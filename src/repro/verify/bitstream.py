"""Configuration round-trip checking (Section VI cross-check).

The bitstream is the one artifact that leaves the compiler's type-safe
world: a schedule is flattened into packed integers that the hardware
re-interprets positionally. :func:`check_bitstream_roundtrip` closes the
loop in software — it derives each component's expected field layout and
values *independently* from the ADG and the schedule, decodes the packed
payload back through :meth:`NodeConfig.unpack`, and diffs the two. A
``config.*`` diagnostic therefore means the encoder and the schedule
disagree about what the hardware will do.

:func:`check_control_program` applies the same idea to the software half
of the interface: the generated command list must mention exactly the
regions, ports, and memory bindings the schedule committed to.
"""

from repro.adg.components import ProcessingElement, Switch, SyncElement
from repro.errors import AdgError, HwGenError
from repro.hwgen.bitstream import OPCODE_IDS, encode_bitstream
from repro.ir.dfg import NodeKind
from repro.ir.region import as_stream_list
from repro.ir.stream import ConstStream, RecurrenceStream
from repro.utils.bits import bits_for_value
from repro.verify.diagnostics import VerifyReport


def check_bitstream_roundtrip(adg, schedule, bitstream=None):
    """Encode ``schedule`` (unless ``bitstream`` is given), decode every
    component's payload, and diff against schedule-derived expectations.

    Returns a :class:`~repro.verify.diagnostics.VerifyReport`.
    """
    report = VerifyReport(checker="bitstream")
    if bitstream is None:
        try:
            bitstream = encode_bitstream(adg, schedule)
        except HwGenError as exc:
            report.add(
                "config.encode-failure",
                f"encoder raised: {exc}",
            )
            return report

    switch_routes, pe_sources = _expected_routing(adg, schedule, report)
    node_names = set(adg.node_names())
    for name in sorted(node_names - set(bitstream.configs)):
        report.add(
            "config.missing-node",
            f"component {name!r} received no configuration word",
            subject=name,
        )
    for name in sorted(set(bitstream.configs) - node_names):
        report.add(
            "config.unknown-node",
            f"configuration addressed to {name!r}, which is not in the "
            "ADG",
            subject=name,
        )

    for name in sorted(node_names & set(bitstream.configs)):
        component = adg.node(name)
        config = bitstream.configs[name]
        if isinstance(component, Switch):
            expected = _expected_switch_fields(
                adg, component, switch_routes.get(name, {})
            )
        elif isinstance(component, ProcessingElement):
            expected = _expected_pe_fields(
                adg, schedule, component, pe_sources.get(name, {})
            )
        elif isinstance(component, SyncElement):
            expected = _expected_sync_fields(schedule, component)
        else:
            expected = {"enable": (0, 1)}
        _diff_config(report, name, config, expected)
    return report


def _diff_config(report, name, config, expected):
    """Decode ``config``'s payload with the independently derived layout
    and compare field by field."""
    expected_widths = {f: width for f, (_, width) in expected.items()}
    actual_widths = {f: width for f, (_, width) in config.fields.items()}
    if expected_widths != actual_widths:
        missing = sorted(set(expected_widths) - set(actual_widths))
        extra = sorted(set(actual_widths) - set(expected_widths))
        differing = sorted(
            f for f in set(expected_widths) & set(actual_widths)
            if expected_widths[f] != actual_widths[f]
        )
        report.add(
            "config.layout",
            f"{name!r}: encoded field layout differs from the "
            "schedule-derived layout",
            subject=name, missing=missing, extra=extra, widths=differing,
        )
        return
    decoded = config.unpack(expected_widths)
    for field_name in sorted(expected):
        want = expected[field_name][0]
        got = decoded.get(field_name)
        if got != want:
            report.add(
                "config.field-mismatch",
                f"{name}.{field_name}: decoded {got}, schedule implies "
                f"{want}",
                subject=f"{name}.{field_name}", decoded=got, expected=want,
            )


# ---------------------------------------------------------------------------
# Independent reconstruction of expected configuration
# ---------------------------------------------------------------------------

def _link_index(links, link_id):
    for index, link in enumerate(links):
        if link.link_id == link_id:
            return index
    return None


def _expected_routing(adg, schedule, report):
    """Walk every route and derive switch routing tables and PE operand
    sources, independently of the encoder's traversal."""
    switch_routes = {}
    pe_sources = {}
    for edge, links in schedule.routes.items():
        for hop, (first, second) in enumerate(zip(links, links[1:])):
            try:
                node = adg.node(adg.link(first).dst)
            except AdgError:
                continue  # broken routes are the linter's job
            if not isinstance(node, Switch):
                continue
            in_idx = _link_index(adg.in_links(node.name), first)
            out_idx = _link_index(adg.out_links(node.name), second)
            if in_idx is None or out_idx is None:
                continue
            table = switch_routes.setdefault(node.name, {})
            if table.setdefault(out_idx, in_idx) != in_idx:
                report.add(
                    "config.switch-conflict",
                    f"switch {node.name!r} output {out_idx} claimed by "
                    "two inputs across routes",
                    subject=node.name, out_idx=out_idx,
                )
        if links:
            try:
                final = adg.link(links[-1])
                consumer = adg.node(final.dst)
            except AdgError:
                continue
            if isinstance(consumer, ProcessingElement):
                in_idx = _link_index(
                    adg.in_links(consumer.name), links[-1]
                )
                if in_idx is not None:
                    pe_sources.setdefault(consumer.name, {})[
                        (edge.dst_id, edge.operand_index)
                    ] = in_idx
    return switch_routes, pe_sources


def _expected_switch_fields(adg, switch, routes):
    out_count = max(1, len(adg.out_links(switch.name)))
    in_count = max(1, len(adg.in_links(switch.name)))
    select_bits = bits_for_value(in_count)
    return {
        f"route{out_idx:03d}": (routes.get(out_idx, in_count), select_bits)
        for out_idx in range(out_count)
    }


def _expected_pe_fields(adg, schedule, pe, sources):
    from repro.scheduler.schedule import Edge

    opcode_bits = bits_for_value(len(OPCODE_IDS))
    in_count = max(1, len(adg.in_links(pe.name)))
    select_bits = bits_for_value(in_count)
    delay_bits = bits_for_value(max(1, pe.delay_fifo_depth))

    fields = {}
    slot = 0
    for vertex, hw_name in sorted(
        schedule.placement.items(), key=lambda item: str(item[0])
    ):
        if hw_name != pe.name:
            continue
        node = schedule.node_of(vertex)
        if node.kind is not NodeKind.INSTR:
            continue
        prefix = f"slot{slot:02d}_"
        fields[prefix + "opcode"] = (OPCODE_IDS[node.op] + 1, opcode_bits)
        for operand_index, ref in enumerate(node.operands):
            fields[prefix + f"src{operand_index}"] = (
                sources.get((vertex.node_id, operand_index), 0),
                select_bits,
            )
            if not pe.is_dynamic:
                edge = Edge(vertex.region, ref.node_id, vertex.node_id,
                            operand_index, ref.lane)
                delay = schedule.input_delays.get(edge, 0)
                fields[prefix + f"delay{operand_index}"] = (
                    min(delay, pe.delay_fifo_depth), delay_bits
                )
        if pe.is_shared:
            fields[prefix + "tag"] = (
                slot, bits_for_value(max(1, pe.max_instructions - 1))
            )
        if node.reduction:
            fields[prefix + "accum"] = (1, 1)
            fields[prefix + "emit_every"] = (
                min(node.emit_every, (1 << 16) - 1), 16
            )
        slot += 1
    if slot == 0:
        fields["slot00_opcode"] = (0, opcode_bits)
    fields["num_slots"] = (
        slot, bits_for_value(max(1, pe.max_instructions))
    )
    return fields


def _expected_sync_fields(schedule, element):
    hosted = int(
        any(hw == element.name for hw in schedule.placement.values())
    )
    return {
        "enable": (hosted, 1),
        "depth": (element.depth, bits_for_value(max(1, element.depth))),
    }


# ---------------------------------------------------------------------------
# Control program
# ---------------------------------------------------------------------------

def check_control_program(scope, schedule, program=None):
    """Diff a generated control program against the scope and schedule.

    Checks the hardware/software contract of Section IV-C: one CONFIG
    prologue, every declared stream issued exactly once on the right
    port with the schedule's memory binding, and a WAIT_ALL epilogue.
    """
    from repro.compiler.codegen import CommandKind, generate_control_program

    report = VerifyReport(checker="program")
    if program is None:
        program = generate_control_program(scope, schedule)

    commands = list(program)
    if not commands or commands[0].kind is not CommandKind.CONFIG:
        report.add(
            "program.prologue",
            "control program does not start with a CONFIG command",
        )
    if not commands or commands[-1].kind is not CommandKind.WAIT_ALL:
        report.add(
            "program.epilogue",
            "control program does not end with WAIT_ALL",
        )

    expected = {}
    for region in scope.regions:
        bindings = list(region.input_streams.items())
        bindings += list(region.output_streams.items())
        for port, binding in bindings:
            for stream in as_stream_list(binding):
                if isinstance(stream, ConstStream):
                    kind = CommandKind.ISSUE_CONST
                elif isinstance(stream, RecurrenceStream):
                    kind = CommandKind.ISSUE_RECUR
                else:
                    kind = CommandKind.ISSUE_STREAM
                key = (region.name, port, kind)
                expected[key] = expected.get(key, 0) + 1

    issued = {}
    for command in program.stream_commands():
        key = (command.region, command.port, command.kind)
        issued[key] = issued.get(key, 0) + 1
        if command.kind is CommandKind.ISSUE_STREAM:
            bound = schedule.stream_binding.get(
                (command.region, command.port), ""
            )
            if command.memory != bound:
                report.add(
                    "program.memory-binding",
                    f"stream {command.region}:{command.port} issued to "
                    f"memory {command.memory!r} but the schedule bound "
                    f"{bound!r}",
                    region=command.region,
                    subject=f"{command.region}:{command.port}",
                    issued=command.memory, bound=bound,
                )

    for key in sorted(set(expected) | set(issued), key=str):
        want = expected.get(key, 0)
        got = issued.get(key, 0)
        if want != got:
            region_name, port, kind = key
            report.add(
                "program.stream-count",
                f"{kind.value} command for {region_name}:{port} issued "
                f"{got} time(s), scope declares {want}",
                region=region_name, subject=f"{region_name}:{port}",
                issued=got, declared=want,
            )
    return report
