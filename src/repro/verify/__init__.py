"""Cross-layer differential verification (ISSUE 4).

Three layers of correctness tooling over the compiler/scheduler/
hardware/simulator stack:

* :mod:`repro.verify.lint` — schedule legality from first principles;
* :mod:`repro.verify.bitstream` — config encode/decode round trips and
  control-program contract checks;
* :mod:`repro.verify.fuzz` — seeded differential fuzzing with automatic
  case shrinking and standalone JSON repro files.

All checkers return :class:`~repro.verify.diagnostics.VerifyReport`
objects; only the opt-in entry points (``compile_kernel(verify=...)``,
the CLI) convert error-level diagnostics into
:class:`~repro.errors.VerificationError`.
"""

from repro.verify.bitstream import (
    check_bitstream_roundtrip,
    check_control_program,
)
from repro.verify.diagnostics import Diagnostic, VerifyReport
from repro.verify.fuzz import (
    FuzzCase,
    FuzzSummary,
    generate_case,
    load_repro,
    replay_repro,
    run_case,
    run_fuzz,
    shrink_case,
    write_repro,
)
from repro.verify.lint import lint_schedule

__all__ = [
    "Diagnostic",
    "FuzzCase",
    "FuzzSummary",
    "VerifyReport",
    "check_bitstream_roundtrip",
    "check_control_program",
    "generate_case",
    "lint_schedule",
    "load_repro",
    "replay_repro",
    "run_case",
    "run_fuzz",
    "shrink_case",
    "verify_compiled",
    "write_repro",
]


def verify_compiled(adg, compiled, allow_partial=False):
    """Run every applicable checker over one compiled kernel.

    Lints the schedule, round-trips the bitstream, and checks the
    control program (when present). Returns one merged
    :class:`VerifyReport`; raises nothing.
    """
    report = VerifyReport(checker="verify")
    if compiled.schedule is None:
        report.add(
            "completeness.no-schedule",
            f"kernel {compiled.kernel_name!r} has no schedule to verify",
            severity="warning" if allow_partial else "error",
        )
        return report
    report.merge(
        lint_schedule(compiled.schedule, adg, allow_partial=allow_partial)
    )
    report.merge(check_bitstream_roundtrip(adg, compiled.schedule))
    if compiled.scope is not None and compiled.program is not None:
        report.merge(
            check_control_program(
                compiled.scope, compiled.schedule, compiled.program
            )
        )
    return report
