"""The scheduling objective of Algorithm 1.

"The objective is formulated as a weighted function which prioritizes
minimizing: 1. overutilization of PEs and network, 2. maximum initiation
interval of dedicated PEs, 3. latency of any recurrence paths"
(Section IV-C). Incompleteness (unplaced vertices, unrouted edges) and
composition-rule violations dominate everything else so the search always
prefers progress toward a legal mapping.
"""

from dataclasses import dataclass

from repro.adg.components import Memory, ProcessingElement
from repro.scheduler.timing import compute_timing


@dataclass
class ScheduleCost:
    """Decomposed schedule cost; compare via :meth:`scalar`."""

    unplaced: int = 0
    unrouted: int = 0
    overuse_pe: int = 0
    overuse_port: int = 0
    overuse_link: int = 0
    overuse_memory: int = 0
    flow_violations: int = 0
    skew_violations: int = 0
    ii: int = 1                # worst region II (reporting)
    ii_excess: int = 0         # sum over regions of (II - 1): the search
    # must see *every* region's II, not just the max — a constant-II
    # low-rate region would otherwise mask improvements elsewhere.
    recurrence: int = 0
    latency: int = 0
    route_length: int = 0

    # Weights: incompleteness >> overuse >> violations >> II >> recurrence
    # >> latency/wire-length tiebreaks.
    W_INCOMPLETE = 10_000.0
    W_OVERUSE = 1_000.0
    W_VIOLATION = 200.0
    W_II = 50.0
    W_RECURRENCE = 10.0
    W_LATENCY = 0.5
    W_ROUTE = 0.05

    def scalar(self):
        return (
            self.W_INCOMPLETE * (self.unplaced + self.unrouted)
            + self.W_OVERUSE * (
                self.overuse_pe + self.overuse_port
                + self.overuse_link + self.overuse_memory
            )
            + self.W_VIOLATION * (self.flow_violations + self.skew_violations)
            + self.W_II * self.ii_excess
            + self.W_RECURRENCE * self.recurrence
            + self.W_LATENCY * self.latency
            + self.W_ROUTE * self.route_length
        )

    @property
    def is_legal(self):
        """A legal, complete mapping: ready for code generation."""
        return (
            self.unplaced == 0
            and self.unrouted == 0
            and self.overuse_pe == 0
            and self.overuse_port == 0
            and self.overuse_link == 0
            and self.overuse_memory == 0
            and self.flow_violations == 0
            and self.skew_violations == 0
        )

    def __lt__(self, other):
        return self.scalar() < other.scalar()


def evaluate_schedule(schedule, routing, timing_result=None,
                      telemetry=None):
    """Compute the :class:`ScheduleCost` of a (partial) schedule.

    Evaluation is delta-friendly: every utilization table is served from
    the schedule's live counters, and timing is cached per region on its
    mutation epoch, so the cost of a call is proportional to the
    resources in use plus the regions that actually changed — not the
    whole schedule. ``telemetry`` counts ``sched_evaluations`` and the
    timing cache hit/recompute split.
    """
    if telemetry is not None:
        telemetry.incr("sched_evaluations")
    cost = ScheduleCost()
    # Placement keys are vertices and route keys are edges (a Schedule
    # invariant), so incompleteness is pure count arithmetic.
    cost.unplaced = schedule.num_vertices() - len(schedule.placement)
    cost.unrouted = schedule.num_edges() - len(schedule.routes)

    # PE overuse: beyond one instruction for dedicated, beyond the
    # instruction buffer for shared.
    for hw_name, load in schedule.pe_load().items():
        hw = schedule.adg.node(hw_name)
        capacity = hw.max_instructions if isinstance(
            hw, ProcessingElement
        ) else 1
        cost.overuse_pe += max(0, load - capacity)

    # Sync elements host a single DFG port per configuration.
    for hw_name, load in schedule.port_load().items():
        cost.overuse_port += max(0, load - 1)

    # A dedicated link carries one value per instance.
    for link_id, load in schedule.link_load().items():
        cost.overuse_link += max(0, load - 1)

    # Memory stream slots.
    for memory_name, streams in schedule.memory_streams().items():
        memory = schedule.adg.node(memory_name)
        slots = memory.num_stream_slots if isinstance(memory, Memory) else 1
        cost.overuse_memory += max(0, len(streams) - slots)

    timing = timing_result or compute_timing(
        schedule, routing, telemetry=telemetry
    )
    cost.ii = timing.max_ii
    cost.ii_excess = sum(
        t.ii - 1 for t in timing.regions.values()
    )
    cost.recurrence = max(
        (t.recurrence_latency for t in timing.regions.values()), default=0
    )
    cost.latency = max(
        (t.latency for t in timing.regions.values()), default=0
    )
    cost.flow_violations = sum(
        t.flow_violations for t in timing.regions.values()
    )
    cost.skew_violations = sum(
        t.skew_violations for t in timing.regions.values()
    )
    cost.route_length = schedule.route_length()
    return cost
