"""Cross-fabric schedule translation for composition warm-starts.

When the composition explorer (:mod:`repro.dse.compose`) moves a kernel
onto a merged fabric, the kernel already has a good schedule — on a
*different* graph. :func:`translate_schedule` carries that mapping over:
placements and stream bindings are rewritten through the node map the
merge returned, then :func:`~repro.scheduler.repair.strip_invalid` prunes
whatever the new hardware cannot honor, and the stochastic search resumes
from the surviving partial schedule instead of from scratch. This is the
same strip-and-resume contract the DSE uses after a mutation (Section
V-A of the paper), extended across graphs.

Routes and input delays name link ids, and link ids do not survive into
a merged graph for the non-base side — so for a non-identity node map
they are dropped wholesale and re-routed during repair. For the identity
map (the merge base keeps its names *and* link ids) routes are kept and
``strip_invalid`` drops only those whose links genuinely disappeared.
"""

from repro.scheduler.repair import strip_invalid


def translate_schedule(schedule, adg, node_map=None):
    """Port ``schedule`` onto ``adg``; returns a new repaired-warm clone.

    Parameters
    ----------
    schedule:
        A schedule mapped on some source fabric (left untouched).
    adg:
        The target fabric (e.g. a merged graph).
    node_map:
        Source-node-name -> target-node-name mapping as returned by
        :func:`repro.adg.merge.merge_adgs`. ``None`` means the source
        names are already target names (the merge-base case).

    Returns
    -------
    (schedule, stripped):
        The translated clone rebound to ``adg`` and the number of
        mapping entries dropped while porting.
    """
    twin = schedule.clone()
    stripped = 0
    identity = node_map is None or all(
        src == dst for src, dst in node_map.items()
    )
    if not identity:
        placement = {}
        for vertex, hw_name in twin.placement.items():
            mapped = node_map.get(hw_name)
            if mapped is not None:
                placement[vertex] = mapped
            else:
                stripped += 1
        binding = {}
        for key, memory_name in twin.stream_binding.items():
            mapped = node_map.get(memory_name)
            if mapped is not None:
                binding[key] = mapped
            else:
                stripped += 1
        # Wholesale assignment rebuilds the utilization counters; routes
        # reference source-graph link ids and cannot be mapped.
        stripped += len(twin.routes)
        twin.placement = placement
        twin.routes = {}
        twin.stream_binding = binding
        twin.input_delays = {}
    stripped += strip_invalid(twin, adg)
    return twin, stripped


def translate_warm_schedules(warm_schedules, adg, node_map=None):
    """Port a ``kernel -> {params: schedule}`` warm-start dict onto
    ``adg`` (the shape the DSE explorer threads through generations).

    Schedules that lose every placement in translation are dropped (an
    empty warm start is worse than none: the repair search would waste
    its first iterations rediscovering that). Returns
    ``(schedules, stripped_total)``.
    """
    ported = {}
    stripped_total = 0
    for kernel_name in sorted(warm_schedules):
        entries = sorted(
            warm_schedules[kernel_name].items(),
            key=lambda item: repr(item[0]),
        )
        for params, schedule in entries:
            twin, stripped = translate_schedule(schedule, adg, node_map)
            stripped_total += stripped
            if twin.placement:
                ported.setdefault(kernel_name, {})[params] = twin
    return ported, stripped_total
