"""Spatial scheduling: mapping dataflow onto the ADG.

The scheduler has the paper's three responsibilities (Section IV-C):
map instructions and streams onto hardware units, route dependences onto
the network, and match operand-arrival timing for static components.

* :mod:`repro.scheduler.schedule` — the mapping state (placements,
  routes, stream bindings) with utilization tracking.
* :mod:`repro.scheduler.router` — congestion-aware Dijkstra routing.
* :mod:`repro.scheduler.timing` — operand-arrival timing, delay-FIFO
  budgeting, initiation intervals and recurrence latencies.
* :mod:`repro.scheduler.objective` — the weighted objective of
  Algorithm 1 (overutilization, II, recurrence latency, legality).
* :mod:`repro.scheduler.stochastic` — the iterative stochastic search.
* :mod:`repro.scheduler.repair` — schedule repair after ADG edits
  (Section V-A), the key DSE accelerator.
"""

from repro.scheduler.schedule import Schedule, Vertex
from repro.scheduler.router import RoutingGraph
from repro.scheduler.objective import ScheduleCost, evaluate_schedule
from repro.scheduler.stochastic import SpatialScheduler
from repro.scheduler.repair import repair_schedule
from repro.scheduler.warmstart import translate_schedule, translate_warm_schedules

__all__ = [
    "Schedule",
    "Vertex",
    "RoutingGraph",
    "ScheduleCost",
    "evaluate_schedule",
    "SpatialScheduler",
    "repair_schedule",
    "translate_schedule",
    "translate_warm_schedules",
]
