"""Operand-arrival timing for spatial schedules.

Responsibility 3 of the scheduler (Section IV-C): "match the timing of
operand arrival (for static components)". For every placed-and-routed
region this module computes:

* per-vertex ready/finish times following routed path latencies;
* delay-FIFO assignments that equalize operand skew at static PEs, plus
  the violation amount where the FIFO depth is insufficient (throughput
  loss is proportional to residual imbalance [64]);
* the fabric initiation interval (dedicated vs shared vs unpipelined);
* recurrence-path latencies (reductions and self-recurrence streams);
* execution-model flow violations (static -> dynamic without a sync
  element, dedicated -> shared).

Per-region timing is cached on the schedule keyed on its mutation epoch
(see :class:`repro.scheduler.schedule.Schedule`): a region is only
re-timed when its placement or routes changed since the last call. The
cross-region components (shared-PE contention, link time-multiplexing)
are recomputed every call from the schedule's live counters, which is
cheap, and merged into the cached per-region result without mutating it.
"""

from dataclasses import dataclass, field, replace

from repro.adg.components import ProcessingElement
from repro.ir.dfg import NodeKind
from repro.ir.region import as_stream_list
from repro.ir.stream import RecurrenceStream
from repro.isa.opcodes import OPCODES
from repro.scheduler.schedule import Vertex


@dataclass
class RegionTiming:
    """Timing summary for one region."""

    latency: int = 0               # input fire -> last output arrival
    ii: int = 1                    # initiation interval (cycles/instance)
    recurrence_latency: int = 0    # longest dependence cycle
    skew_violations: int = 0       # delay-FIFO shortfall (cycles)
    flow_violations: int = 0       # illegal execution-model edges
    ready_times: dict = field(default_factory=dict)


@dataclass
class TimingResult:
    """Timing for every region of a schedule."""

    regions: dict = field(default_factory=dict)

    @property
    def total_violations(self):
        return sum(
            t.skew_violations + t.flow_violations
            for t in self.regions.values()
        )

    @property
    def max_ii(self):
        return max((t.ii for t in self.regions.values()), default=1)


def _node_latency(node):
    if node.kind is NodeKind.INSTR:
        return OPCODES[node.op].latency
    return 0


def compute_timing(schedule, routing, assign_delays=True, telemetry=None):
    """Compute :class:`TimingResult` for ``schedule``.

    Unplaced/unrouted regions still produce entries (with their placed
    subset timed) so repair can reason about partial schedules. When
    ``assign_delays`` is set, the computed per-edge delay-FIFO settings
    are written into ``schedule.input_delays``.

    Regions whose mutation epoch is unchanged since the previous call
    are served from the schedule's timing cache; ``telemetry`` (a
    :class:`repro.utils.telemetry.Telemetry`) counts
    ``timing_region_recomputes`` vs ``timing_region_cache_hits``.
    """
    result = TimingResult()
    per_pe = schedule.pe_issue_cost()
    ii_link = _link_initiation_interval(schedule)
    for region in schedule.regions():
        cached = schedule.cached_region_timing(region.name, assign_delays)
        if cached is None:
            base = _time_region(schedule, routing, region, assign_delays)
            region_pes = {
                schedule.placement.get(Vertex(region.name, node.node_id))
                for node in region.dfg.instructions()
            }
            schedule.store_region_timing(
                region.name, assign_delays, (base, region_pes)
            )
            if telemetry is not None:
                telemetry.incr("timing_region_recomputes")
        else:
            base, region_pes = cached
            if telemetry is not None:
                telemetry.incr("timing_region_cache_hits")
        # A region's II is bounded by the PEs *it* occupies (a once-per-
        # launch divide in a low-rate region must not throttle the
        # high-rate region it feeds) — but contention on shared PEs it
        # co-occupies with other regions is included via per-PE totals.
        # This cross-region component is merged on a copy so the cached
        # per-region result stays valid when *other* regions move.
        region_ii = max(
            (per_pe.get(hw, 1) for hw in region_pes if hw is not None),
            default=1,
        )
        result.regions[region.name] = replace(
            base, ii=max(base.ii, region_ii, ii_link)
        )
    return result


def _pe_initiation_intervals(schedule):
    """Per-PE issue cost: dedicated pipelined PEs sustain one op/cycle;
    shared PEs issue one of their k instructions per cycle; unpipelined
    opcodes block for their latency. Returns ``{pe_name: cost}``.

    From-scratch oracle for ``Schedule.pe_issue_cost()`` (which serves
    the same table from live counters); kept for the parity tests.
    """
    per_pe = {}
    for vertex, hw_name in schedule.placement.items():
        node = schedule.node_of(vertex)
        if node.kind is not NodeKind.INSTR:
            continue
        op = OPCODES[node.op]
        cost = op.latency if not op.pipelined else 1
        per_pe[hw_name] = per_pe.get(hw_name, 0) + cost
    return per_pe


def _link_initiation_interval(schedule):
    """A link carrying k software edges time-multiplexes k words per
    instance."""
    load = schedule.link_load()
    return max(load.values(), default=1)


def _time_region(schedule, routing, region, assign_delays):
    timing = RegionTiming()
    dfg = region.dfg
    ready = {}
    finish = {}

    for node_id in dfg.topological_order():
        node = dfg.node(node_id)
        vertex = Vertex(region.name, node_id)
        if node.kind is NodeKind.CONST:
            finish[node_id] = 0
            continue
        if node.kind is NodeKind.INPUT:
            # Sync elements release all inputs simultaneously at t=0.
            ready[node_id] = 0
            finish[node_id] = 0
            continue

        arrivals = []
        refs = list(node.operands)
        if node.predicate is not None:
            refs.append(node.predicate)
        for index, ref in enumerate(refs):
            producer = dfg.node(ref.node_id)
            if producer.kind is NodeKind.CONST:
                continue  # constants are resident in the PE configuration
            operand_index = index if index < len(node.operands) else -1
            edge = _find_edge(schedule, region.name, ref.node_id,
                              node_id, operand_index, ref.lane)
            base = finish.get(ref.node_id, 0)
            route = schedule.routes.get(edge)
            hop = routing.path_latency(route) if route is not None else 0
            arrivals.append((edge, base + hop))

        if arrivals:
            target = max(time for _, time in arrivals)
        else:
            target = 0
        ready[node_id] = target
        finish[node_id] = target + _node_latency(node)

        hw_name = schedule.placement.get(vertex)
        if hw_name is not None and node.kind is NodeKind.INSTR:
            hw = schedule.adg.node(hw_name)
            if isinstance(hw, ProcessingElement) and not hw.is_dynamic:
                timing.skew_violations += _assign_delays(
                    schedule, hw, arrivals, target, assign_delays
                )
            timing.flow_violations += _flow_violations(
                schedule, region, node, hw
            )

    timing.ready_times = ready
    timing.latency = max(finish.values(), default=0)
    timing.recurrence_latency = _recurrence_latency(
        schedule, routing, region, finish
    )
    if timing.recurrence_latency:
        timing.ii = max(timing.ii, 1)
    return timing


def _find_edge(schedule, region_name, src_id, dst_id, operand_index, lane):
    from repro.scheduler.schedule import Edge

    return Edge(region_name, src_id, dst_id, operand_index, lane)


def _assign_delays(schedule, pe, arrivals, target, assign):
    """Equalize operand skew through the PE's input delay FIFOs; returns
    violation cycles that exceed the FIFO depth."""
    violations = 0
    for edge, time in arrivals:
        skew = target - time
        absorbed = min(skew, pe.delay_fifo_depth)
        if assign:
            schedule.input_delays[edge] = absorbed
        violations += skew - absorbed
    return violations


def _flow_violations(schedule, region, node, hw):
    """Count illegal execution-model edges into this instruction
    (Section III-B): static producer -> dynamic consumer (needs a sync
    element) and dedicated producer -> shared consumer."""
    violations = 0
    refs = list(node.operands)
    if node.predicate is not None:
        refs.append(node.predicate)
    for ref in refs:
        producer = region.dfg.node(ref.node_id)
        if producer.kind is not NodeKind.INSTR:
            continue
        producer_hw_name = schedule.placement.get(
            Vertex(region.name, producer.node_id)
        )
        if producer_hw_name is None:
            continue
        producer_hw = schedule.adg.node(producer_hw_name)
        if not isinstance(producer_hw, ProcessingElement):
            continue
        if not producer_hw.is_dynamic and hw.is_dynamic:
            violations += 1
        if not producer_hw.is_shared and hw.is_shared:
            violations += 1
    return violations


def _recurrence_latency(schedule, routing, region, finish):
    """Longest dependence cycle: reduction opcodes recur internally with
    their own latency; self-recurrence streams (output port recycled into
    an input port) loop through the whole routed datapath."""
    # Fallback transforms may force a serialized dependence (e.g. the
    # naive join's pointer-chasing loop, Section IV-E).
    longest = region.metadata.get("forced_recurrence", 0)
    for node in region.dfg.instructions():
        if node.reduction:
            longest = max(longest, OPCODES[node.op].latency)
    output_names = {n.name: n for n in region.dfg.outputs()}
    for port, binding in region.input_streams.items():
        for stream in as_stream_list(binding):
            if not isinstance(stream, RecurrenceStream):
                continue
            source = output_names.get(stream.source_port)
            if source is None:
                continue  # cross-region forward: pipelined, not a cycle
            # Loop: output arrival + 2 cycles through the port pair.
            loop = finish.get(source.node_id, 0) + 2
            longest = max(longest, loop)
    return longest
