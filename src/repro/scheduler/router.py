"""Congestion-aware shortest-path routing over the ADG network.

"Route this instruction's operands and dependences to the network using
Dijkstra's algorithm" (Algorithm 1). :class:`RoutingGraph` precomputes
adjacency once per ADG; :meth:`route` finds a cheapest path whose interior
traverses only switches and delay FIFOs, with link costs inflated by
current congestion so the stochastic search negotiates away overuse
(in the spirit of PathFinder [51]).
"""

import heapq

from repro.adg.components import DelayFifo, Switch


class RoutingGraph:
    """Precomputed routing view of an ADG.

    Rebuild after any topology edit (the repair pass does this).
    """

    #: Cost of traversing one link.
    LINK_COST = 1.0
    #: Extra cost per already-routed edge sharing a link. Must exceed the
    #: cost of several detour hops or Dijkstra will happily share links
    #: the objective then counts as overuse (PathFinder prices congestion
    #: high for the same reason).
    CONGESTION_COST = 12.0

    def __init__(self, adg):
        self.adg = adg
        self._links = {link.link_id: link for link in adg.links()}
        # The adjacency lists and per-source BFS hop tables only serve
        # routing queries (``route``/``hops``/``reachable``); both are
        # filled on first use so timing-only consumers — the simulator
        # builds a RoutingGraph per replay just for ``path_latency`` —
        # pay the link dict and nothing else.
        self._adjacency = None  # node name -> [(link_id, dst, latency)]
        self._hop_cache = {}

    def link(self, link_id):
        return self._links[link_id]

    def _neighbors(self):
        if self._adjacency is None:
            adg = self.adg
            adjacency = {name: [] for name in adg.node_names()}
            for link in self._links.values():
                dst_node = adg.node(link.dst)
                latency = 1
                if isinstance(dst_node, Switch):
                    latency = dst_node.latency
                adjacency[link.src].append(
                    (link.link_id, link.dst, latency))
            self._adjacency = adjacency
        return self._adjacency

    def _passable(self, name):
        """May a route pass *through* this node?"""
        node = self.adg.node(name)
        return isinstance(node, (Switch, DelayFifo))

    def route(self, src, dst, link_values=None, value=None, forbidden=None):
        """Cheapest path from hardware node ``src`` to ``dst``.

        Returns a list of link ids, or None when unreachable. Interior
        nodes must be switches or delay FIFOs; ``src``/``dst`` may be any
        component.

        ``link_values`` maps link ids to the set of value identities
        already routed through them; ``value`` is the identity this route
        will carry. Links already carrying the *same* value are nearly
        free (multicast fanout reuses the wire); links carrying other
        values are congestion-priced. ``forbidden`` is a set of node
        names routes must avoid.
        """
        if src == dst:
            return []
        adjacency = self._neighbors()
        link_values = link_values or {}
        forbidden = forbidden or ()
        best = {src: 0.0}
        parent = {}
        heap = [(0.0, src)]
        visited = set()
        while heap:
            cost, name = heapq.heappop(heap)
            if name in visited:
                continue
            visited.add(name)
            if name == dst:
                break
            if name != src and not self._passable(name):
                continue  # terminal nodes cannot forward traffic
            for link_id, neighbor, latency in adjacency[name]:
                if neighbor in forbidden:
                    continue
                occupants = link_values.get(link_id)
                if occupants and value is not None and value in occupants:
                    # Fanout reuse: the wire already carries this value.
                    step = 0.1
                else:
                    step = (
                        self.LINK_COST
                        + latency
                        + self.CONGESTION_COST * len(occupants or ())
                    )
                candidate = cost + step
                if candidate < best.get(neighbor, float("inf")):
                    best[neighbor] = candidate
                    parent[neighbor] = (name, link_id)
                    heapq.heappush(heap, (candidate, neighbor))
        if dst not in parent:
            return None
        path = []
        name = dst
        while name != src:
            previous, link_id = parent[name]
            path.append(link_id)
            name = previous
        path.reverse()
        return path

    def path_latency(self, links):
        """Pipeline latency of a routed path (flopped switches add a cycle
        each; the final hop into the consumer is combinational)."""
        latency = 0
        for link_id in links:
            dst = self.adg.node(self._links[link_id].dst)
            if isinstance(dst, Switch):
                latency += dst.latency
            elif isinstance(dst, DelayFifo):
                latency += 1
        return latency

    def reachable(self, src, dst):
        return self.route(src, dst) is not None

    def _bfs_hops(self, src):
        """BFS hop table from ``src`` (interior hops through switches
        and delay FIFOs only)."""
        adjacency = self._neighbors()
        table = {src: 0}
        frontier = [src]
        while frontier:
            next_frontier = []
            for name in frontier:
                if name != src and not self._passable(name):
                    continue
                for link_id, neighbor, _latency in adjacency[name]:
                    if neighbor not in table:
                        table[neighbor] = table[name] + 1
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return table

    def hops(self, src, dst):
        """Congestion-free hop distance (precomputed); inf when
        unreachable. Used to bias placement toward nearby tiles."""
        table = self._hop_cache.get(src)
        if table is None:  # src added after construction: fill on demand
            table = self._bfs_hops(src)
            self._hop_cache[src] = table
        return table.get(dst, float("inf"))
