"""The spatial schedule: a (partial) mapping of a scope onto an ADG.

A schedule maps three kinds of software objects:

* DFG vertices — ``Vertex(region, node_id)`` — onto hardware nodes
  (instructions onto PEs, DFG inputs/outputs onto sync elements);
* DFG edges onto network routes (ordered link lists);
* streams onto memories.

The schedule deliberately allows illegal intermediate states
(overutilized PEs/links, unplaced vertices): the stochastic search
minimizes these through the objective rather than forbidding them
("to avoid local minima during the search, the routing and PE resources
are allowed to be overutilized", Section IV-C).
"""

from dataclasses import dataclass

from repro.adg.components import (
    Direction,
    ProcessingElement,
    SyncElement,
)
from repro.errors import SchedulingError
from repro.ir.dfg import NodeKind


@dataclass(frozen=True)
class Vertex:
    """A software vertex: one DFG node of one region."""

    region: str
    node_id: int

    def __repr__(self):
        return f"{self.region}#{self.node_id}"


@dataclass(frozen=True)
class Edge:
    """A software dependence: producer vertex -> consumer operand slot.

    ``operand_index`` is -1 for predicate inputs. ``lane`` selects the
    producer word being consumed: the pair ``(src, lane)`` is the value
    identity used for multicast routing — edges carrying the same value
    may share network links (fanout), edges carrying different values
    may not (on dedicated/static switches).
    """

    region: str
    src_id: int
    dst_id: int
    operand_index: int
    lane: int = 0

    @property
    def src(self):
        return Vertex(self.region, self.src_id)

    @property
    def dst(self):
        return Vertex(self.region, self.dst_id)

    @property
    def value(self):
        """The multicast value identity carried by this edge."""
        return (self.region, self.src_id, self.lane)


class Schedule:
    """Mapping state for one configuration scope on one ADG."""

    def __init__(self, scope, adg):
        self.scope = scope
        self.adg = adg
        self.placement = {}       # Vertex -> hw node name
        self.routes = {}          # Edge -> [link_id, ...]
        self.stream_binding = {}  # (region, port) -> memory name
        self.input_delays = {}    # Edge -> extra delay-FIFO cycles
        self._edges = None

    # ------------------------------------------------------------------
    # Software-side views
    # ------------------------------------------------------------------
    def regions(self):
        return self.scope.regions

    def region(self, name):
        return self.scope.region(name)

    def vertices(self, kinds=None):
        """All software vertices, optionally filtered by NodeKind set."""
        result = []
        for region in self.scope.regions:
            for node in region.dfg.nodes():
                if node.kind is NodeKind.CONST:
                    continue  # constants are baked into PE configuration
                if kinds is None or node.kind in kinds:
                    result.append(Vertex(region.name, node.node_id))
        return result

    def instruction_vertices(self):
        return self.vertices({NodeKind.INSTR})

    def port_vertices(self):
        return self.vertices({NodeKind.INPUT, NodeKind.OUTPUT})

    def node_of(self, vertex):
        """The DFG node behind a vertex."""
        return self.scope.region(vertex.region).dfg.node(vertex.node_id)

    def edges(self):
        """All software dependence edges (cached)."""
        if self._edges is None:
            self._edges = []
            for region in self.scope.regions:
                for src, dst, idx, lane in region.dfg.edges():
                    producer = region.dfg.node(src)
                    if producer.kind is NodeKind.CONST:
                        continue  # no route needed: consts live in config
                    self._edges.append(
                        Edge(region.name, src, dst, idx, lane)
                    )
        return self._edges

    def edges_of(self, vertex):
        """Edges touching a vertex."""
        return [
            edge for edge in self.edges()
            if (edge.region == vertex.region
                and vertex.node_id in (edge.src_id, edge.dst_id))
        ]

    # ------------------------------------------------------------------
    # Mapping operations
    # ------------------------------------------------------------------
    def place(self, vertex, hw_name):
        if not self.adg.has_node(hw_name):
            raise SchedulingError(f"placement target {hw_name!r} not in ADG")
        self.placement[vertex] = hw_name

    def unplace(self, vertex):
        """Remove a vertex's placement and every route touching it."""
        self.placement.pop(vertex, None)
        for edge in self.edges_of(vertex):
            self.routes.pop(edge, None)
            self.input_delays.pop(edge, None)

    def hw_of(self, vertex):
        return self.placement.get(vertex)

    def set_route(self, edge, links):
        self.routes[edge] = list(links)

    def bind_stream(self, region_name, port, memory_name):
        if not self.adg.has_node(memory_name):
            raise SchedulingError(f"memory {memory_name!r} not in ADG")
        self.stream_binding[(region_name, port)] = memory_name

    def clear(self):
        self.placement.clear()
        self.routes.clear()
        self.stream_binding.clear()
        self.input_delays.clear()

    def clone(self):
        twin = Schedule(self.scope, self.adg)
        twin.placement = dict(self.placement)
        twin.routes = {k: list(v) for k, v in self.routes.items()}
        twin.stream_binding = dict(self.stream_binding)
        twin.input_delays = dict(self.input_delays)
        return twin

    def rebind(self, adg):
        """Reattach the schedule to a (possibly edited) ADG clone."""
        self.adg = adg

    # ------------------------------------------------------------------
    # Status queries
    # ------------------------------------------------------------------
    def unplaced_vertices(self):
        return [v for v in self.vertices() if v not in self.placement]

    def unrouted_edges(self):
        result = []
        for edge in self.edges():
            if edge in self.routes:
                continue
            if edge.src in self.placement and edge.dst in self.placement:
                result.append(edge)
            elif edge.src not in self.placement or edge.dst not in self.placement:
                result.append(edge)
        return result

    def is_complete(self):
        """Everything placed and routed (legality judged separately)."""
        if self.unplaced_vertices():
            return False
        return all(edge in self.routes for edge in self.edges())

    # ------------------------------------------------------------------
    # Utilization
    # ------------------------------------------------------------------
    def pe_load(self):
        """PE name -> number of instructions mapped to it."""
        load = {}
        for vertex, hw_name in self.placement.items():
            if self.node_of(vertex).kind is NodeKind.INSTR:
                load[hw_name] = load.get(hw_name, 0) + 1
        return load

    def port_load(self):
        """Sync element name -> number of DFG ports mapped to it."""
        load = {}
        for vertex, hw_name in self.placement.items():
            if self.node_of(vertex).kind in (NodeKind.INPUT, NodeKind.OUTPUT):
                load[hw_name] = load.get(hw_name, 0) + 1
        return load

    def link_load(self):
        """link_id -> number of *distinct values* routed through it.

        Fanout is free: several edges carrying the same (producer, lane)
        value share a link as one multicast copy.
        """
        return {
            link_id: len(values)
            for link_id, values in self.link_values().items()
        }

    def link_values(self):
        """link_id -> set of value identities routed through it."""
        values = {}
        for edge, links in self.routes.items():
            for link_id in links:
                values.setdefault(link_id, set()).add(edge.value)
        return values

    def memory_streams(self):
        """memory name -> list of (region, port) bound to it."""
        result = {}
        for key, memory_name in self.stream_binding.items():
            result.setdefault(memory_name, []).append(key)
        return result

    # ------------------------------------------------------------------
    # Legality helpers (composition rules of Section III-B)
    # ------------------------------------------------------------------
    def placement_legal(self, vertex, hw_name):
        """Is ``hw_name`` an acceptable placement target for ``vertex``?

        Checks capability only; execution-model flow rules are costed in
        the objective so the search can pass through illegal states.
        """
        node = self.node_of(vertex)
        hw = self.adg.node(hw_name)
        if node.kind is NodeKind.INSTR:
            if not isinstance(hw, ProcessingElement):
                return False
            if not hw.supports_op(node.op):
                return False
            if node.op == "sjoin" and not hw.is_dynamic:
                return False
            region = self.scope.region(vertex.region)
            if (
                region.join_spec is not None
                and not region.metadata.get("serial_join", False)
                and not hw.is_dynamic
            ):
                # Transformed stream-join regions consume operands
                # data-dependently; only dynamic PEs support that
                # (Section IV-E). The serialized fallback maps anywhere.
                return False
            return True
        if node.kind is NodeKind.INPUT:
            if not isinstance(hw, SyncElement):
                return False
            if hw.direction is not Direction.INPUT:
                return False
            return hw.lanes64 >= node.lanes
        if node.kind is NodeKind.OUTPUT:
            if not isinstance(hw, SyncElement):
                return False
            if hw.direction is not Direction.OUTPUT:
                return False
            return hw.lanes64 >= len(node.operands)
        return False

    def candidates_for(self, vertex):
        """All legal hardware targets for a vertex."""
        node = self.node_of(vertex)
        if node.kind is NodeKind.INSTR:
            pool = self.adg.pes()
        else:
            pool = self.adg.sync_elements()
        return [
            hw.name for hw in pool if self.placement_legal(vertex, hw.name)
        ]

    def summary(self):
        return {
            "placed": len(self.placement),
            "vertices": len(self.vertices()),
            "routed": len(self.routes),
            "edges": len(self.edges()),
            "streams_bound": len(self.stream_binding),
        }
