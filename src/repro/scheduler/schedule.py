"""The spatial schedule: a (partial) mapping of a scope onto an ADG.

A schedule maps three kinds of software objects:

* DFG vertices — ``Vertex(region, node_id)`` — onto hardware nodes
  (instructions onto PEs, DFG inputs/outputs onto sync elements);
* DFG edges onto network routes (ordered link lists);
* streams onto memories.

The schedule deliberately allows illegal intermediate states
(overutilized PEs/links, unplaced vertices): the stochastic search
minimizes these through the objective rather than forbidding them
("to avoid local minima during the search, the routing and PE resources
are allowed to be overutilized", Section IV-C).

Utilization state (``pe_load``/``port_load``/``link_values``/
``memory_streams``/per-PE issue cost/total route length) is maintained
*incrementally*: ``placement``, ``routes`` and ``stream_binding`` are
observed mappings that update live counters on every mutation, so the
objective evaluates in time proportional to the resources actually in
use rather than re-deriving every table per call. The from-scratch
derivations are kept as ``_recompute_*`` oracles for property tests.

Each mutation also bumps a per-region *epoch*; ``compute_timing`` caches
per-region timing keyed on that epoch so only regions whose placement or
routes changed are re-timed.

Invariants callers must respect (all existing callers do):

* placement keys are vertices of :meth:`vertices`, route keys are edges
  of :meth:`edges` (so incompleteness is pure count arithmetic);
* route link-lists are never mutated in place — replace them through
  :meth:`set_route`;
* wholesale assignment to ``placement``/``routes``/``stream_binding``
  is allowed but rebuilds the counters from scratch (counted in
  :data:`STATS`).
"""

from dataclasses import dataclass

from repro.adg.components import (
    Direction,
    ProcessingElement,
    SyncElement,
)
from repro.errors import SchedulingError
from repro.ir.dfg import NodeKind
from repro.isa.opcodes import OPCODES

#: Process-wide count of from-scratch derived-state rebuilds (wholesale
#: assignment to ``placement``/``routes``/``stream_binding`` or
#: unpickling). The scheduler snapshots this around a run to surface it
#: as the ``sched_load_rebuilds`` telemetry counter.
STATS = {"load_rebuilds": 0}


@dataclass(frozen=True)
class Vertex:
    """A software vertex: one DFG node of one region."""

    region: str
    node_id: int

    def __repr__(self):
        return f"{self.region}#{self.node_id}"


@dataclass(frozen=True)
class Edge:
    """A software dependence: producer vertex -> consumer operand slot.

    ``operand_index`` is -1 for predicate inputs. ``lane`` selects the
    producer word being consumed: the pair ``(src, lane)`` is the value
    identity used for multicast routing — edges carrying the same value
    may share network links (fanout), edges carrying different values
    may not (on dedicated/static switches).
    """

    region: str
    src_id: int
    dst_id: int
    operand_index: int
    lane: int = 0

    @property
    def src(self):
        return Vertex(self.region, self.src_id)

    @property
    def dst(self):
        return Vertex(self.region, self.dst_id)

    @property
    def value(self):
        """The multicast value identity carried by this edge."""
        return (self.region, self.src_id, self.lane)


class _ObservedDict(dict):
    """A dict that notifies its owner on every entry add/remove.

    The callbacks keep the schedule's live utilization counters in sync
    with direct mutations (``sched.routes.pop(edge)``,
    ``del sched.placement[v]``, ...) without forcing every caller
    through dedicated mutator methods.
    """

    __slots__ = ("_on_add", "_on_remove")

    def __init__(self, on_add, on_remove):
        super().__init__()
        self._on_add = on_add
        self._on_remove = on_remove

    def __setitem__(self, key, value):
        if key in self:
            self._on_remove(key, dict.__getitem__(self, key))
        dict.__setitem__(self, key, value)
        self._on_add(key, value)

    def __delitem__(self, key):
        value = dict.__getitem__(self, key)
        dict.__delitem__(self, key)
        self._on_remove(key, value)

    def pop(self, key, *default):
        if key in self:
            value = dict.__getitem__(self, key)
            del self[key]
            return value
        if default:
            return default[0]
        raise KeyError(key)

    def popitem(self):
        key = next(reversed(self))
        return key, self.pop(key)

    def clear(self):
        for key in list(dict.keys(self)):
            del self[key]

    def update(self, *args, **kwargs):
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    def setdefault(self, key, default=None):
        if key not in self:
            self[key] = default
        return dict.__getitem__(self, key)


def _issue_cost(op_name):
    """Per-instance issue cost of one instruction on its PE: pipelined
    opcodes sustain one issue per cycle, unpipelined ones block."""
    op = OPCODES[op_name]
    return 1 if op.pipelined else op.latency


class Schedule:
    """Mapping state for one configuration scope on one ADG."""

    def __init__(self, scope, adg):
        self.scope = scope
        self.adg = adg
        self.input_delays = {}    # Edge -> extra delay-FIFO cycles
        self._region_by_name = {r.name: r for r in scope.regions}
        # Immutable software-side views, built lazily, shared by clones.
        self._edges = None
        self._edges_by_vertex = None
        self._all_vertices = None
        # Live utilization counters (see module docstring).
        self._pe_load = {}          # PE name -> mapped instruction count
        self._port_load = {}        # sync name -> mapped DFG port count
        self._pe_issue_cost = {}    # PE name -> summed issue cost
        self._link_value_refs = {}  # link_id -> {value: route refcount}
        self._memory_streams = {}   # memory name -> [(region, port), ...]
        self._route_length = 0      # total links across all routes
        # Timing-cache state: per-region mutation epoch plus the cached
        # RegionTiming entries keyed on it (see repro.scheduler.timing).
        self._region_epoch = {}
        self._timing_cache = {}     # region -> (epoch, has_delays, timing)
        self._placement = _ObservedDict(
            self._vertex_placed, self._vertex_unplaced
        )
        self._routes = _ObservedDict(self._route_added, self._route_removed)
        self._stream_binding = _ObservedDict(
            self._stream_bound, self._stream_unbound
        )

    # ------------------------------------------------------------------
    # Observed mappings
    # ------------------------------------------------------------------
    @property
    def placement(self):
        """Vertex -> hw node name (observed: mutations update counters)."""
        return self._placement

    @placement.setter
    def placement(self, mapping):
        items = dict(mapping)
        STATS["load_rebuilds"] += 1
        self._pe_load.clear()
        self._port_load.clear()
        self._pe_issue_cost.clear()
        self._placement = _ObservedDict(
            self._vertex_placed, self._vertex_unplaced
        )
        self._placement.update(items)

    @property
    def routes(self):
        """Edge -> [link_id, ...] (observed: mutations update counters)."""
        return self._routes

    @routes.setter
    def routes(self, mapping):
        items = {key: list(value) for key, value in dict(mapping).items()}
        STATS["load_rebuilds"] += 1
        self._link_value_refs.clear()
        self._route_length = 0
        self._routes = _ObservedDict(self._route_added, self._route_removed)
        self._routes.update(items)

    @property
    def stream_binding(self):
        """(region, port) -> memory name (observed)."""
        return self._stream_binding

    @stream_binding.setter
    def stream_binding(self, mapping):
        items = dict(mapping)
        STATS["load_rebuilds"] += 1
        self._memory_streams.clear()
        self._stream_binding = _ObservedDict(
            self._stream_bound, self._stream_unbound
        )
        self._stream_binding.update(items)

    # ------------------------------------------------------------------
    # Mutation observers
    # ------------------------------------------------------------------
    def _bump_epoch(self, region_name):
        self._region_epoch[region_name] = (
            self._region_epoch.get(region_name, 0) + 1
        )

    @staticmethod
    def _decrement(table, key, amount):
        remaining = table.get(key, 0) - amount
        if remaining > 0:
            table[key] = remaining
        else:
            table.pop(key, None)

    def _vertex_placed(self, vertex, hw_name):
        node = self.node_of(vertex)
        if node.kind is NodeKind.INSTR:
            self._pe_load[hw_name] = self._pe_load.get(hw_name, 0) + 1
            self._pe_issue_cost[hw_name] = (
                self._pe_issue_cost.get(hw_name, 0) + _issue_cost(node.op)
            )
        elif node.kind in (NodeKind.INPUT, NodeKind.OUTPUT):
            self._port_load[hw_name] = self._port_load.get(hw_name, 0) + 1
        self._bump_epoch(vertex.region)

    def _vertex_unplaced(self, vertex, hw_name):
        node = self.node_of(vertex)
        if node.kind is NodeKind.INSTR:
            self._decrement(self._pe_load, hw_name, 1)
            self._decrement(
                self._pe_issue_cost, hw_name, _issue_cost(node.op)
            )
        elif node.kind in (NodeKind.INPUT, NodeKind.OUTPUT):
            self._decrement(self._port_load, hw_name, 1)
        self._bump_epoch(vertex.region)

    def _route_added(self, edge, links):
        value = edge.value
        for link_id in links:
            refs = self._link_value_refs.setdefault(link_id, {})
            refs[value] = refs.get(value, 0) + 1
        self._route_length += len(links)
        self._bump_epoch(edge.region)

    def _route_removed(self, edge, links):
        value = edge.value
        for link_id in links:
            refs = self._link_value_refs.get(link_id)
            if refs is None:
                continue
            remaining = refs.get(value, 0) - 1
            if remaining > 0:
                refs[value] = remaining
            else:
                refs.pop(value, None)
                if not refs:
                    del self._link_value_refs[link_id]
        self._route_length -= len(links)
        self._bump_epoch(edge.region)

    def _stream_bound(self, key, memory_name):
        self._memory_streams.setdefault(memory_name, []).append(key)

    def _stream_unbound(self, key, memory_name):
        keys = self._memory_streams.get(memory_name)
        if keys is None:
            return
        keys.remove(key)
        if not keys:
            del self._memory_streams[memory_name]

    # ------------------------------------------------------------------
    # Software-side views
    # ------------------------------------------------------------------
    def regions(self):
        return self.scope.regions

    def region(self, name):
        region = self._region_by_name.get(name)
        if region is None:
            region = self.scope.region(name)  # raises for unknown names
            self._region_by_name[name] = region
        return region

    def vertices(self, kinds=None):
        """All software vertices, optionally filtered by NodeKind set."""
        if self._all_vertices is None:
            result = []
            for region in self.scope.regions:
                for node in region.dfg.nodes():
                    if node.kind is NodeKind.CONST:
                        continue  # constants are baked into PE config
                    result.append(Vertex(region.name, node.node_id))
            self._all_vertices = result
        if kinds is None:
            return list(self._all_vertices)
        return [
            v for v in self._all_vertices if self.node_of(v).kind in kinds
        ]

    def num_vertices(self):
        if self._all_vertices is None:
            self.vertices()
        return len(self._all_vertices)

    def instruction_vertices(self):
        return self.vertices({NodeKind.INSTR})

    def port_vertices(self):
        return self.vertices({NodeKind.INPUT, NodeKind.OUTPUT})

    def node_of(self, vertex):
        """The DFG node behind a vertex."""
        return self.region(vertex.region).dfg.node(vertex.node_id)

    def edges(self):
        """All software dependence edges (cached, shared with clones)."""
        if self._edges is None:
            edges = []
            by_vertex = {}
            for region in self.scope.regions:
                dfg = region.dfg
                for src, dst, idx, lane in dfg.edges():
                    if dfg.node(src).kind is NodeKind.CONST:
                        continue  # no route needed: consts live in config
                    edge = Edge(region.name, src, dst, idx, lane)
                    edges.append(edge)
                    by_vertex.setdefault(edge.src, []).append(edge)
                    if edge.dst != edge.src:
                        by_vertex.setdefault(edge.dst, []).append(edge)
            self._edges = edges
            self._edges_by_vertex = by_vertex
        return self._edges

    def num_edges(self):
        return len(self.edges())

    def edges_of(self, vertex):
        """Edges touching a vertex (indexed, not a linear scan)."""
        if self._edges_by_vertex is None:
            self.edges()
        return list(self._edges_by_vertex.get(vertex, ()))

    # ------------------------------------------------------------------
    # Mapping operations
    # ------------------------------------------------------------------
    def place(self, vertex, hw_name):
        if not self.adg.has_node(hw_name):
            raise SchedulingError(f"placement target {hw_name!r} not in ADG")
        self._placement[vertex] = hw_name

    def unplace(self, vertex):
        """Remove a vertex's placement and every route touching it."""
        self._placement.pop(vertex, None)
        for edge in self.edges_of(vertex):
            self._routes.pop(edge, None)
            self.input_delays.pop(edge, None)

    def hw_of(self, vertex):
        return self._placement.get(vertex)

    def set_route(self, edge, links):
        self._routes[edge] = list(links)

    def bind_stream(self, region_name, port, memory_name):
        if not self.adg.has_node(memory_name):
            raise SchedulingError(f"memory {memory_name!r} not in ADG")
        self._stream_binding[(region_name, port)] = memory_name

    def clear(self):
        # Fast path: raw-clear the observed dicts and reset the counters
        # wholesale instead of walking every entry through the observers.
        dict.clear(self._placement)
        dict.clear(self._routes)
        dict.clear(self._stream_binding)
        self.input_delays.clear()
        self._pe_load.clear()
        self._port_load.clear()
        self._pe_issue_cost.clear()
        self._link_value_refs.clear()
        self._memory_streams.clear()
        self._route_length = 0
        self._timing_cache.clear()
        for region in self.scope.regions:
            self._bump_epoch(region.name)

    def clone(self):
        twin = Schedule(self.scope, self.adg)
        # Fast path: copy raw mappings and live counters directly —
        # routing every entry through the observers would redo
        # O(schedule) work on every accepted search iteration.
        dict.update(twin._placement, self._placement)
        dict.update(
            twin._routes,
            {edge: list(links) for edge, links in self._routes.items()},
        )
        dict.update(twin._stream_binding, self._stream_binding)
        twin.input_delays = dict(self.input_delays)
        twin._pe_load = dict(self._pe_load)
        twin._port_load = dict(self._port_load)
        twin._pe_issue_cost = dict(self._pe_issue_cost)
        twin._link_value_refs = {
            link_id: dict(refs)
            for link_id, refs in self._link_value_refs.items()
        }
        twin._memory_streams = {
            memory: list(keys)
            for memory, keys in self._memory_streams.items()
        }
        twin._route_length = self._route_length
        twin._region_epoch = dict(self._region_epoch)
        twin._timing_cache = dict(self._timing_cache)
        # The DFG-derived views are immutable: share them with the twin.
        self.edges()
        twin._edges = self._edges
        twin._edges_by_vertex = self._edges_by_vertex
        twin._all_vertices = self._all_vertices
        return twin

    def rebind(self, adg):
        """Reattach the schedule to a (possibly edited) ADG clone."""
        self.adg = adg
        # Routed path latencies and component properties may differ on
        # the new hardware: every cached region timing is suspect.
        self._timing_cache.clear()
        for region in self.scope.regions:
            self._bump_epoch(region.name)

    # ------------------------------------------------------------------
    # Pickling (warm schedules cross the DSE worker-process boundary)
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {
            "scope": self.scope,
            "adg": self.adg,
            "placement": dict(self._placement),
            "routes": {
                edge: list(links) for edge, links in self._routes.items()
            },
            "stream_binding": dict(self._stream_binding),
            "input_delays": dict(self.input_delays),
        }

    def __setstate__(self, state):
        self.__init__(state["scope"], state["adg"])
        self.placement = state["placement"]
        self.routes = state["routes"]
        self.stream_binding = state["stream_binding"]
        self.input_delays = dict(state["input_delays"])

    # ------------------------------------------------------------------
    # Status queries
    # ------------------------------------------------------------------
    def unplaced_vertices(self):
        return [v for v in self.vertices() if v not in self._placement]

    def unrouted_edges(self):
        return [edge for edge in self.edges() if edge not in self._routes]

    def is_complete(self):
        """Everything placed and routed (legality judged separately)."""
        if len(self._placement) < self.num_vertices():
            return False
        return len(self._routes) >= self.num_edges()

    # ------------------------------------------------------------------
    # Utilization (served from the live counters)
    # ------------------------------------------------------------------
    def pe_load(self):
        """PE name -> number of instructions mapped to it."""
        return dict(self._pe_load)

    def port_load(self):
        """Sync element name -> number of DFG ports mapped to it."""
        return dict(self._port_load)

    def link_load(self):
        """link_id -> number of *distinct values* routed through it.

        Fanout is free: several edges carrying the same (producer, lane)
        value share a link as one multicast copy.
        """
        return {
            link_id: len(refs)
            for link_id, refs in self._link_value_refs.items()
        }

    def link_values(self):
        """link_id -> set of value identities routed through it.

        Returns a fresh copy: callers (the router's congestion view)
        mutate the result while speculating.
        """
        return {
            link_id: set(refs)
            for link_id, refs in self._link_value_refs.items()
        }

    def memory_streams(self):
        """memory name -> list of (region, port) bound to it.

        Entry order within a memory is unspecified (it follows binding
        order, not the binding-dict order).
        """
        return {
            memory: list(keys)
            for memory, keys in self._memory_streams.items()
        }

    def pe_issue_cost(self):
        """PE name -> summed per-instance issue cost of its instructions
        (pipelined opcodes cost 1, unpipelined ones their latency)."""
        return dict(self._pe_issue_cost)

    def route_length(self):
        """Total number of links across all routes."""
        return self._route_length

    # ------------------------------------------------------------------
    # Region timing cache (used by repro.scheduler.timing)
    # ------------------------------------------------------------------
    def region_epoch(self, region_name):
        """Monotonic counter bumped on every placement/route mutation
        touching ``region_name``."""
        return self._region_epoch.get(region_name, 0)

    def cached_region_timing(self, region_name, need_delays):
        """The cached RegionTiming for ``region_name`` if still valid
        (same epoch; delay-FIFO assignments present when required)."""
        entry = self._timing_cache.get(region_name)
        if entry is None:
            return None
        epoch, has_delays, timing = entry
        if epoch != self._region_epoch.get(region_name, 0):
            return None
        if need_delays and not has_delays:
            return None
        return timing

    def store_region_timing(self, region_name, has_delays, timing):
        self._timing_cache[region_name] = (
            self._region_epoch.get(region_name, 0), has_delays, timing
        )

    # ------------------------------------------------------------------
    # From-scratch oracles (property-test ground truth for the counters)
    # ------------------------------------------------------------------
    def _recompute_pe_load(self):
        load = {}
        for vertex, hw_name in self._placement.items():
            if self.node_of(vertex).kind is NodeKind.INSTR:
                load[hw_name] = load.get(hw_name, 0) + 1
        return load

    def _recompute_port_load(self):
        load = {}
        for vertex, hw_name in self._placement.items():
            if self.node_of(vertex).kind in (NodeKind.INPUT,
                                             NodeKind.OUTPUT):
                load[hw_name] = load.get(hw_name, 0) + 1
        return load

    def _recompute_pe_issue_cost(self):
        cost = {}
        for vertex, hw_name in self._placement.items():
            node = self.node_of(vertex)
            if node.kind is NodeKind.INSTR:
                cost[hw_name] = cost.get(hw_name, 0) + _issue_cost(node.op)
        return cost

    def _recompute_link_values(self):
        values = {}
        for edge, links in self._routes.items():
            for link_id in links:
                values.setdefault(link_id, set()).add(edge.value)
        return values

    def _recompute_memory_streams(self):
        result = {}
        for key, memory_name in self._stream_binding.items():
            result.setdefault(memory_name, []).append(key)
        return result

    def _recompute_route_length(self):
        return sum(len(links) for links in self._routes.values())

    # ------------------------------------------------------------------
    # Legality helpers (composition rules of Section III-B)
    # ------------------------------------------------------------------
    def placement_legal(self, vertex, hw_name):
        """Is ``hw_name`` an acceptable placement target for ``vertex``?

        Checks capability only; execution-model flow rules are costed in
        the objective so the search can pass through illegal states.
        """
        node = self.node_of(vertex)
        hw = self.adg.node(hw_name)
        if node.kind is NodeKind.INSTR:
            if not isinstance(hw, ProcessingElement):
                return False
            if not hw.supports_op(node.op):
                return False
            if node.op == "sjoin" and not hw.is_dynamic:
                return False
            region = self.region(vertex.region)
            if (
                region.join_spec is not None
                and not region.metadata.get("serial_join", False)
                and not hw.is_dynamic
            ):
                # Transformed stream-join regions consume operands
                # data-dependently; only dynamic PEs support that
                # (Section IV-E). The serialized fallback maps anywhere.
                return False
            return True
        if node.kind is NodeKind.INPUT:
            if not isinstance(hw, SyncElement):
                return False
            if hw.direction is not Direction.INPUT:
                return False
            return hw.lanes64 >= node.lanes
        if node.kind is NodeKind.OUTPUT:
            if not isinstance(hw, SyncElement):
                return False
            if hw.direction is not Direction.OUTPUT:
                return False
            return hw.lanes64 >= len(node.operands)
        return False

    def candidates_for(self, vertex):
        """All legal hardware targets for a vertex."""
        node = self.node_of(vertex)
        if node.kind is NodeKind.INSTR:
            pool = self.adg.pes()
        else:
            pool = self.adg.sync_elements()
        return [
            hw.name for hw in pool if self.placement_legal(vertex, hw.name)
        ]

    def summary(self):
        return {
            "placed": len(self._placement),
            "vertices": self.num_vertices(),
            "routed": len(self._routes),
            "edges": self.num_edges(),
            "streams_bound": len(self._stream_binding),
        }
