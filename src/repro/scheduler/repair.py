"""Schedule repair after ADG edits (Section V-A).

"After each ADG modification, the set of schedules being explored are
updated to reflect the new hardware. Specifically, any aspect of the
input program which used a deleted ADG component is also deleted from the
schedule. Then schedule repair is performed, which attempts to both repair
the incomplete schedule, as well as try to take advantage of any added
hardware features."

:func:`strip_invalid` removes stale mapping state; :func:`repair_schedule`
strips and resumes the stochastic search from the surviving partial
schedule — the paper's key DSE speedup (Figure 11).
"""

from repro.adg.components import Memory, ProcessingElement
from repro.scheduler.stochastic import SpatialScheduler


def strip_invalid(schedule, adg):
    """Drop placements/routes/bindings referencing hardware that no longer
    exists in ``adg`` (or whose capability was edited away).

    Returns the number of mapping entries removed. The schedule is
    rebound to ``adg``.
    """
    removed = 0
    schedule.rebind(adg)

    for vertex in list(schedule.placement):
        hw_name = schedule.placement[vertex]
        if not adg.has_node(hw_name) or not schedule.placement_legal(
            vertex, hw_name
        ):
            schedule.unplace(vertex)
            removed += 1

    live_links = {link.link_id for link in adg.links()}
    for edge in list(schedule.routes):
        links = schedule.routes[edge]
        if any(link_id not in live_links for link_id in links):
            del schedule.routes[edge]
            schedule.input_delays.pop(edge, None)
            removed += 1

    for key in list(schedule.stream_binding):
        hw_name = schedule.stream_binding[key]
        if not adg.has_node(hw_name) \
                or not isinstance(adg.node(hw_name), Memory):
            del schedule.stream_binding[key]
            removed += 1

    # Delay assignments sized for FIFOs that shrank (or whose consumer
    # placement is gone) would silently violate the hardware bound.
    for edge in list(schedule.input_delays):
        hw_name = schedule.placement.get(edge.dst)
        if hw_name is None or not adg.has_node(hw_name):
            del schedule.input_delays[edge]
            removed += 1
            continue
        hw = adg.node(hw_name)
        if isinstance(hw, ProcessingElement) \
                and schedule.input_delays[edge] > hw.delay_fifo_depth:
            del schedule.input_delays[edge]
            removed += 1
    return removed


def repair_schedule(schedule, adg, rng=None, max_iters=200, patience=25,
                    telemetry=None):
    """Strip stale state, then resume the stochastic search on ``adg``.

    Returns ``(schedule, cost)`` like
    :meth:`~repro.scheduler.stochastic.SpatialScheduler.schedule`.
    """
    strip_invalid(schedule, adg)
    scheduler = SpatialScheduler(
        adg, rng=rng, max_iters=max_iters, patience=patience,
        telemetry=telemetry,
    )
    return scheduler.schedule(schedule.scope, initial=schedule)
