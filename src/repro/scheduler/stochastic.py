"""The iterative stochastic spatial scheduler (Algorithm 1).

Each iteration unmaps one or more mapped instructions (or streams), then
for each candidate PE (or memory) routes the dependences with Dijkstra,
recomputes timing, evaluates the objective, and commits the best target.
The search stops when the mapping is legal and the objective has been
stable for ``patience`` iterations, or after ``max_iters``.

Repair (Section V-A) falls out naturally: passing a partially valid
schedule as the starting point resumes the same loop.
"""

from repro.errors import SchedulingError
from repro.ir.dfg import NodeKind
from repro.ir.region import as_stream_list
from repro.ir.stream import (
    ConstStream,
    IndirectStream,
    RecurrenceStream,
    UpdateStream,
)
from repro.scheduler.objective import evaluate_schedule
from repro.scheduler.router import RoutingGraph
from repro.scheduler.schedule import STATS as SCHEDULE_STATS
from repro.scheduler.schedule import Schedule
from repro.utils.rng import DeterministicRng
from repro.utils.telemetry import Telemetry


class SpatialScheduler:
    """Stochastic search with solution repair.

    Parameters
    ----------
    adg:
        Target hardware.
    rng:
        Randomness source (deterministic by default).
    max_iters:
        Iteration budget per :meth:`schedule` call (the paper uses 200
        during DSE).
    patience:
        Stop once legal and stable for this many iterations.
    max_candidates:
        Candidate targets sampled per move (bounds per-iteration work).
    telemetry:
        Optional :class:`repro.utils.telemetry.Telemetry`; the scheduler
        counts evaluations, timing cache hits/recomputes, move outcomes
        and from-scratch state rebuilds, and times its phases under
        ``sched/*``. Defaults to a disabled (no-op) instance.
    """

    def __init__(self, adg, rng=None, max_iters=200, patience=25,
                 max_candidates=10, telemetry=None):
        self.adg = adg
        self.routing = RoutingGraph(adg)
        self.rng = rng or DeterministicRng(0)
        self.max_iters = max_iters
        self.patience = patience
        self.max_candidates = max_candidates
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry(enabled=False)
        )

    def _evaluate(self, sched):
        return evaluate_schedule(
            sched, self.routing, telemetry=self.telemetry
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def schedule(self, scope, initial=None):
        """Map ``scope`` onto the ADG.

        Returns ``(schedule, cost)`` with the best mapping found; the cost
        may be illegal when the hardware simply cannot host the scope —
        callers check ``cost.is_legal``.
        """
        telemetry = self.telemetry
        rebuilds_before = SCHEDULE_STATS["load_rebuilds"]
        sched = initial if initial is not None else Schedule(scope, self.adg)
        if initial is not None and sched.adg is not self.adg:
            sched.rebind(self.adg)
        self._region_rates = self._compute_region_rates(scope)
        self._bind_streams(sched)
        with telemetry.timer("sched/greedy_place"):
            self._greedy_place(sched)
        with telemetry.timer("sched/route_all"):
            self._route_all(sched)
        best = sched.clone()
        best_cost = self._evaluate(best)
        stable = 0
        self.last_iterations = 0
        with telemetry.timer("sched/search"):
            for _ in range(self.max_iters):
                if best_cost.is_legal and stable >= self.patience:
                    break
                self.last_iterations += 1
                telemetry.incr("sched_iterations")
                if not best_cost.is_legal and stable and stable % 12 == 0:
                    # Stalled with congestion: rip up every route and
                    # rebuild in randomized order under congestion pricing.
                    telemetry.incr("sched_global_reroutes")
                    self._global_reroute(sched)
                # Near a solution but stalled: stop sampling, consider
                # every candidate (small fabrics afford exhaustive moves).
                self._thorough = (
                    not best_cost.is_legal and stable >= 8
                )
                improved = self._iterate(sched)
                cost = self._evaluate(sched)
                if cost.scalar() < best_cost.scalar():
                    best = sched.clone()
                    best_cost = cost
                    stable = 0
                else:
                    stable += 1
                if not improved and not best_cost.is_legal:
                    # No move available at all: perturb by unmapping a
                    # random placed vertex to escape.
                    placed = [
                        v for v in sched.vertices() if v in sched.placement
                    ]
                    if placed:
                        telemetry.incr("sched_escapes")
                        sched.unplace(self.rng.choice(placed))
        telemetry.incr("sched_runs")
        rebuilt = SCHEDULE_STATS["load_rebuilds"] - rebuilds_before
        if rebuilt:
            telemetry.incr("sched_load_rebuilds", rebuilt)
        return best, best_cost

    # ------------------------------------------------------------------
    # Stream binding (responsibility 1 for streams)
    # ------------------------------------------------------------------
    def _bind_streams(self, sched):
        """Bind every memory-touching stream to a memory node.

        The compiler records per-array placement in
        ``region.metadata['array_memory']`` ('spad' or 'dma'); arrays
        default to the DMA/L2 interface. Streams needing the indirect
        controller or atomic update only bind to capable memories.
        """
        spad = self.adg.scratchpad()
        dma = self.adg.dma()
        for region in sched.regions():
            placement = region.metadata.get("array_memory", {})
            bindings = list(region.input_streams.items()) + list(
                region.output_streams.items()
            )
            for port, binding in bindings:
                for stream in as_stream_list(binding):
                    if isinstance(stream, (ConstStream, RecurrenceStream)):
                        continue
                    memory = self._memory_for(
                        stream, placement.get(stream.array, "dma"),
                        spad, dma,
                    )
                    if memory is None:
                        raise SchedulingError(
                            "no memory can execute stream on "
                            f"{region.name}:{port} (array {stream.array!r})"
                        )
                    sched.bind_stream(region.name, port, memory.name)

    def _memory_for(self, stream, preferred, spad, dma):
        candidates = []
        if preferred == "spad" and spad is not None:
            candidates = [spad, dma]
        else:
            candidates = [dma, spad]
        scalarized = getattr(stream, "scalarized", False)
        for memory in candidates:
            if memory is None:
                continue
            if not scalarized:
                if isinstance(stream, UpdateStream):
                    if not (memory.indirect and memory.atomic_update):
                        continue
                elif isinstance(stream, IndirectStream):
                    if not memory.indirect:
                        continue
            return memory
        return None

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _greedy_place(self, sched):
        """Initial placement: ports first (they are scarce), then
        instructions near their operands."""
        for vertex in sched.unplaced_vertices():
            node = sched.node_of(vertex)
            if node.kind in (NodeKind.INPUT, NodeKind.OUTPUT):
                self._place_best(sched, vertex)
        for vertex in sched.unplaced_vertices():
            self._place_best(sched, vertex)

    def _port_candidates(self, sched, vertex):
        """Sync-element candidates respecting memory connectivity."""
        node = sched.node_of(vertex)
        candidates = sched.candidates_for(vertex)
        memory_name = sched.stream_binding.get((vertex.region, node.name))
        if memory_name is None:
            return candidates
        filtered = []
        for name in candidates:
            if node.kind is NodeKind.INPUT:
                connected = any(
                    link.src == memory_name
                    for link in sched.adg.in_links(name)
                )
            else:
                connected = any(
                    link.dst == memory_name
                    for link in sched.adg.out_links(name)
                )
            if connected:
                filtered.append(name)
        return filtered or candidates

    def _candidates(self, sched, vertex):
        node = sched.node_of(vertex)
        if node.kind in (NodeKind.INPUT, NodeKind.OUTPUT):
            pool = self._port_candidates(sched, vertex)
        else:
            pool = sched.candidates_for(vertex)
        if len(pool) <= self.max_candidates or getattr(
            self, "_thorough", False
        ):
            return pool
        # Bias toward tiles near the vertex's placed neighbors (short
        # wires route and time more easily), keeping a random remainder
        # for diversity.
        anchors = []
        for edge in sched.edges_of(vertex):
            other = edge.dst if edge.src == vertex else edge.src
            hw = sched.placement.get(other)
            if hw is not None:
                anchors.append(hw)
        if anchors:
            def proximity(hw_name):
                return sum(
                    min(self.routing.hops(a, hw_name),
                        self.routing.hops(hw_name, a))
                    for a in anchors
                )

            ranked = sorted(pool, key=proximity)
            near_count = max(2, self.max_candidates * 2 // 3)
            pool = ranked[:near_count] + self.rng.sample(
                ranked[near_count:],
                min(self.max_candidates - near_count,
                    len(ranked) - near_count),
            )
        else:
            pool = self.rng.sample(pool, self.max_candidates)
        return pool

    def _compute_region_rates(self, scope):
        """Relative firing rates per region: low-rate (outer-loop)
        regions should favor shared PEs, high-rate regions dedicated
        ones (Section IV-C)."""
        rates = {}
        for region in scope.regions:
            try:
                instances = region.instance_count()
            except Exception:
                instances = region.expected_instances
            rates[region.name] = max(1.0, float(
                (instances or 1) * max(region.frequency, 1.0)
            ))
        peak = max(rates.values(), default=1.0)
        return {name: rate / peak for name, rate in rates.items()}

    def _rate_bias(self, sched, vertex, hw_name):
        """Soft placement preference: below real-cost weights, above
        tie-breaking noise."""
        node = sched.node_of(vertex)
        if node.kind is not NodeKind.INSTR:
            return 0.0
        hw = sched.adg.node(hw_name)
        is_shared = getattr(hw, "is_shared", False)
        rate = self._region_rates.get(vertex.region, 1.0)
        if is_shared and rate > 0.5:
            return 40.0   # high-rate work wants a dedicated tile
        if not is_shared and rate < 0.1:
            return 40.0   # outer-loop work should yield dedicated tiles
        return 0.0

    def _place_best(self, sched, vertex):
        """Try every sampled candidate; commit the one with the best
        objective (Algorithm 1 inner loop). Returns True on success."""
        pool = self._candidates(sched, vertex)
        if not pool:
            return False
        best_name, best_scalar = None, float("inf")
        best_routes = None
        for hw_name in pool:
            sched.place(vertex, hw_name)
            routed = self._route_vertex_edges(sched, vertex)
            cost = self._evaluate(sched)
            scalar = cost.scalar() + self._rate_bias(sched, vertex, hw_name)
            if scalar < best_scalar:
                best_scalar = scalar
                best_name = hw_name
                best_routes = {
                    edge: list(sched.routes[edge])
                    for edge in routed if edge in sched.routes
                }
            # Roll back routes for the next candidate.
            for edge in routed:
                sched.routes.pop(edge, None)
            sched.placement.pop(vertex, None)
        if best_name is None:
            return False
        sched.place(vertex, best_name)
        for edge, links in (best_routes or {}).items():
            sched.set_route(edge, links)
        return True

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route_vertex_edges(self, sched, vertex):
        """(Re)route all edges of ``vertex`` whose endpoints are placed.

        Returns the list of edges attempted (routed or not).
        """
        attempted = []
        # Drop this vertex's existing routes first so they neither count
        # as congestion nor survive a move.
        for edge in sched.edges_of(vertex):
            sched.routes.pop(edge, None)
        link_values = sched.link_values()
        for edge in sched.edges_of(vertex):
            src_hw = sched.placement.get(edge.src)
            dst_hw = sched.placement.get(edge.dst)
            attempted.append(edge)
            if src_hw is None or dst_hw is None:
                continue
            path = self.routing.route(
                src_hw, dst_hw, link_values, edge.value
            )
            if path is not None:
                sched.set_route(edge, path)
                for link_id in path:
                    link_values.setdefault(link_id, set()).add(edge.value)
        return attempted

    def _route_all(self, sched):
        for vertex in sched.vertices():
            if vertex in sched.placement:
                missing = [
                    edge for edge in sched.edges_of(vertex)
                    if edge not in sched.routes
                ]
                if missing:
                    self._route_vertex_edges(sched, vertex)

    # ------------------------------------------------------------------
    # One Algorithm-1 iteration
    # ------------------------------------------------------------------
    def _iterate(self, sched):
        # PathFinder-style move: sometimes rip up one congested route and
        # re-route it under current congestion pricing, without touching
        # placement (cheap and often enough to untangle hot links).
        if self.rng.accept(0.30) and self._reroute_congested(sched):
            self.telemetry.incr("sched_moves_reroute")
            return True
        # Swap move: exchange two placed instructions (the escape for
        # near-full fabrics where single re-placement cannot help).
        if self.rng.accept(0.25) and self._swap_instructions(sched):
            self.telemetry.incr("sched_moves_swap")
            return True
        vertex = self._pick_victim(sched)
        if vertex is None:
            return False
        self.telemetry.incr("sched_moves_replace")
        # "Unmap one or more mapped instructions" (Algorithm 1):
        # occasionally evict a second vertex to open room.
        extra = None
        if self.rng.accept(0.15):
            placed = [v for v in sched.vertices()
                      if v in sched.placement and v != vertex]
            if placed:
                extra = self.rng.choice(placed)
                sched.unplace(extra)
        sched.unplace(vertex)
        placed_ok = self._place_best(sched, vertex)
        if extra is not None:
            placed_ok = self._place_best(sched, extra) and placed_ok
        return placed_ok

    def _swap_instructions(self, sched):
        """Swap the placements of a congestion-involved instruction and a
        random other instruction; keep the swap only if it improves the
        objective."""
        from repro.ir.dfg import NodeKind as _NK

        instrs = [
            v for v in sched.vertices({_NK.INSTR}) if v in sched.placement
        ]
        if len(instrs) < 2:
            return False
        first = self._pick_victim(sched)
        if (
            first is None
            or first not in sched.placement
            or sched.node_of(first).kind is not _NK.INSTR
        ):
            first = self.rng.choice(instrs)
        second = self.rng.choice([v for v in instrs if v != first])
        hw_first = sched.placement[first]
        hw_second = sched.placement[second]
        if not (sched.placement_legal(first, hw_second)
                and sched.placement_legal(second, hw_first)):
            return False
        before = self._evaluate(sched).scalar()
        # Only routes touching the swapped pair can change: save just
        # those so the revert is a targeted restore, not a wholesale
        # route-table rebuild.
        touched = set(sched.edges_of(first)) | set(sched.edges_of(second))
        saved_routes = {
            edge: list(sched.routes[edge])
            for edge in touched if edge in sched.routes
        }
        sched.unplace(first)
        sched.unplace(second)
        sched.place(first, hw_second)
        sched.place(second, hw_first)
        self._route_vertex_edges(sched, first)
        self._route_vertex_edges(sched, second)
        after = self._evaluate(sched).scalar()
        if after < before:
            return True
        # Revert — and report no progress, so the caller's escape
        # perturbation is not starved by phantom improvements.
        sched.unplace(first)
        sched.unplace(second)
        sched.place(first, hw_first)
        sched.place(second, hw_second)
        for edge, links in saved_routes.items():
            sched.set_route(edge, links)
        self.telemetry.incr("sched_moves_swap_reverted")
        return False

    def _global_reroute(self, sched):
        """PathFinder-style full rip-up: reroute every placed edge in a
        random order so early routes stop blocking later ones."""
        edges = [
            edge for edge in sched.edges()
            if edge.src in sched.placement and edge.dst in sched.placement
        ]
        self.rng.shuffle(edges)
        sched.routes.clear()
        link_values = {}
        for edge in edges:
            path = self.routing.route(
                sched.placement[edge.src], sched.placement[edge.dst],
                link_values, edge.value,
            )
            if path is not None:
                sched.set_route(edge, path)
                for link_id in path:
                    link_values.setdefault(link_id, set()).add(edge.value)

    def _reroute_congested(self, sched):
        link_load = sched.link_load()
        hot = {link for link, load in link_load.items() if load > 1}
        if not hot:
            return False
        congested = [
            edge for edge, links in sched.routes.items()
            if any(link_id in hot for link_id in links)
        ]
        if not congested:
            return False
        edge = self.rng.choice(congested)
        src_hw = sched.placement.get(edge.src)
        dst_hw = sched.placement.get(edge.dst)
        if src_hw is None or dst_hw is None:
            # A committed route whose endpoint went unplaced must stay
            # committed — popping it here would silently lose it.
            return False
        old = sched.routes.pop(edge)
        path = self.routing.route(
            src_hw, dst_hw, sched.link_values(), edge.value
        )
        sched.set_route(edge, path if path is not None else old)
        return True

    def _pick_victim(self, sched):
        """Prefer vertices that contribute to cost: unplaced ones, those
        on overused resources, then anything."""
        unplaced = sched.unplaced_vertices()
        if unplaced:
            return self.rng.choice(unplaced)
        overused = []
        pe_load = sched.pe_load()
        port_load = sched.port_load()
        for vertex, hw_name in sched.placement.items():
            node = sched.node_of(vertex)
            if node.kind is NodeKind.INSTR:
                hw = sched.adg.node(hw_name)
                capacity = getattr(hw, "max_instructions", 1)
                if pe_load.get(hw_name, 0) > capacity:
                    overused.append(vertex)
            elif port_load.get(hw_name, 0) > 1:
                overused.append(vertex)
        link_load = sched.link_load()
        hot_links = {
            link_id for link_id, load in link_load.items() if load > 1
        }
        for edge, links in sched.routes.items():
            if any(link_id in hot_links for link_id in links):
                if edge.dst in sched.placement:
                    overused.append(edge.dst)
        # Execution-model flow violations (Section III-B): either endpoint
        # of a static->dynamic or dedicated->shared edge is a good victim.
        from repro.adg.components import ProcessingElement as _PE

        for edge in sched.edges():
            src_hw = sched.placement.get(edge.src)
            dst_hw = sched.placement.get(edge.dst)
            if src_hw is None or dst_hw is None:
                continue
            src_node = sched.adg.node(src_hw)
            dst_node = sched.adg.node(dst_hw)
            if not (isinstance(src_node, _PE) and isinstance(dst_node, _PE)):
                continue
            if (not src_node.is_dynamic and dst_node.is_dynamic) or (
                not src_node.is_shared and dst_node.is_shared
            ):
                overused.append(edge.src)
                overused.append(edge.dst)
        unrouted = [
            edge.src for edge in sched.edges()
            if edge not in sched.routes and edge.src in sched.placement
        ]
        pool = overused or unrouted
        if pool:
            return self.rng.choice(pool)
        everything = [v for v in sched.vertices() if v in sched.placement]
        return self.rng.choice(everything) if everything else None
