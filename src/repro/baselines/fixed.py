"""Fixed-function accelerator cost references (Figure 15).

The paper compares its generated designs against technology-scaled
DianNao [12] and SCNN [70] numbers. With no access to those layouts, we
compute a *fixed-function equivalent* of an ADG with our own synthetic
cost model: keep the functional units, memories and minimal wiring, drop
everything reconfigurability pays for — switches become wires,
configuration registers and operand crossbars disappear, sync elements
shrink to plain pipeline FIFOs. The DSAGEN-vs-ASIC gap measured this way
isolates exactly what the paper attributes the overhead to
("we believe the overhead is mainly from reconfigurability").
"""

from repro.adg.components import (
    ControlCore,
    Memory,
    ProcessingElement,
    SyncElement,
)
from repro.estimation.synth_db import (
    MM2_PER_KGATE,
    MW_PER_KGATE,
    synthesize_component,
)
from repro.isa.fu import select_functional_units

#: Hardwired datapath wiring per PE port (replaces the switch fabric).
_WIRE_KGATES = 0.02
#: Fixed-function control (FSM replaces the programmable core).
_FSM_KGATES = 3.0


def scnn_reference():
    """A fixed-function sparse-CNN datapath reference (SCNN [70] style):
    a small multiplier array with an accumulation crossbar into a banked
    scratchpad — no general routing, no configuration. Returned as an
    ADG so :func:`fixed_function_cost` prices it with the same cost
    model."""
    from repro.adg.topologies import build_mesh

    adg = build_mesh(
        2, 2,
        name="scnn_ref",
        ops={"mul", "add", "copy", "cmp_gt", "select"},
        num_inputs=4,
        num_outputs=2,
        spad_kwargs={
            "capacity_bytes": 16 * 1024,
            "banks": 8,
            "indirect": True,
            "atomic_update": True,
        },
        with_dma=True,
    )
    return adg


def fixed_function_cost(adg):
    """(area_mm2, power_mw) of the fixed-function equivalent of ``adg``."""
    area = 0.0
    power = 0.0
    for component in adg.nodes():
        if isinstance(component, ProcessingElement):
            units = select_functional_units(component.op_names)
            kgates = sum(u.gate_cost for u in units) * component.width / 64.0
            kgates += _WIRE_KGATES * len(adg.in_links(component.name))
            area += kgates * MM2_PER_KGATE
            power += kgates * MW_PER_KGATE
        elif isinstance(component, Memory):
            mem_area, mem_power = synthesize_component(
                component, noisy=False
            )
            area += mem_area
            power += mem_power
        elif isinstance(component, SyncElement):
            # A plain FIFO at half the programmable sync element's cost.
            kgates = 0.15 + 0.028 * component.depth * max(
                1, component.width // 64
            )
            area += kgates * MM2_PER_KGATE
            power += kgates * MW_PER_KGATE
        elif isinstance(component, ControlCore):
            area += _FSM_KGATES * MM2_PER_KGATE
            power += _FSM_KGATES * MW_PER_KGATE
        # Switches and delay FIFOs vanish into wires.
    return area, power
