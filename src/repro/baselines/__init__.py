"""Baselines for the evaluation.

* :mod:`repro.baselines.manual` — "manually tuned" accelerator code:
  hand-picked transform parameters, peephole-optimized control streams,
  and near-exhaustive placement (Figure 10's comparison target).
* :mod:`repro.baselines.cpu` — an analytic in-order/superscalar CPU model
  standing in for the paper's Xeon + GCC -O3 reference.
* :mod:`repro.baselines.fixed` — fixed-function accelerator cost
  references (DianNao-, SCNN-style) computed by stripping
  reconfigurability from the equivalent ADG (Figure 15).
"""

from repro.baselines.manual import manual_compile, manual_params_for
from repro.baselines.cpu import cpu_cycles
from repro.baselines.fixed import fixed_function_cost

__all__ = [
    "manual_compile",
    "manual_params_for",
    "cpu_cycles",
    "fixed_function_cost",
]
