"""Manually tuned accelerator implementations (Figure 10 baseline).

The paper's manual versions are assembly implementations that (a) pick
the right transform parameters by hand, (b) "exploit features of the
low-level ISA to reduce the number of control instructions", and (c)
apply workload-specific peepholes (fft peels small-stride iterations and
coalesces their requests). We reproduce each mechanism:

* hand-picked :class:`VariantParams` per (kernel, accelerator);
* control commands issued at hand-scheduled cost (2 cycles instead of
  the compiler's 4 — fused intrinsic setup);
* the fft variant built with ``manual_coalesce``;
* a longer, multi-seed spatial-scheduling search standing in for a
  hand-crafted mapping.
"""

from repro.compiler.codegen import CommandKind, generate_control_program
from repro.compiler.kernel import VariantParams
from repro.compiler.pipeline import CompiledKernel
from repro.errors import CompilationError
from repro.estimation.perf_model import PerformanceModel
from repro.scheduler.stochastic import SpatialScheduler
from repro.scheduler.timing import compute_timing
from repro.utils.rng import DeterministicRng
from repro.workloads import kernel as make_kernel
from repro.workloads.dsp import make_fft_kernel

#: Hand-chosen transform parameters per accelerator family. Dynamic
#: fabrics use stream-join; indirect-capable memories use the indirect
#: and atomic controllers; everything picks the widest unroll that fits.
_MANUAL_PARAMS = {
    # kernel -> {family: VariantParams}; "mesh" covers softbrain/revel,
    # "dyn" covers triggered/spu.
    "mm": {"*": VariantParams(unroll=4)},
    "pb_mm": {"*": VariantParams(unroll=4)},
    "pb_2mm": {"*": VariantParams(unroll=4)},
    "pb_3mm": {"*": VariantParams(unroll=2)},
    "md": {
        "*": VariantParams(unroll=2),
        "spu": VariantParams(unroll=4, use_indirect=True),
        "revel": VariantParams(unroll=2, use_indirect=True),
    },
    "crs": {
        "*": VariantParams(unroll=1),
        "spu": VariantParams(unroll=2, use_indirect=True),
        "revel": VariantParams(unroll=1, use_indirect=True),
    },
    "ellpack": {
        "*": VariantParams(unroll=2),
        "spu": VariantParams(unroll=4, use_indirect=True),
        "revel": VariantParams(unroll=2, use_indirect=True),
    },
    "stencil2d": {"*": VariantParams(unroll=2)},
    "stencil3d": {"*": VariantParams(unroll=2)},
    "histogram": {
        "*": VariantParams(unroll=1),
        "spu": VariantParams(
            unroll=4, use_indirect=True, use_atomic=True
        ),
    },
    "join": {
        "*": VariantParams(),
        "spu": VariantParams(use_join=True),
        "triggered": VariantParams(use_join=True),
        "revel": VariantParams(use_join=True),
    },
    "qr": {"*": VariantParams(unroll=4)},
    "chol": {"*": VariantParams()},
    "fft": {"*": VariantParams()},
    "conv": {"*": VariantParams()},
    "pool": {"*": VariantParams(unroll=2)},
    "classifier": {"*": VariantParams(unroll=4)},
    "spmm_outer": {
        "*": VariantParams(),
        "spu": VariantParams(use_indirect=True, use_atomic=True),
    },
    "resparsify": {"*": VariantParams()},
}

#: Hand-scheduled command issue cost (fused intrinsics).
MANUAL_ISSUE_CYCLES = 2


def manual_params_for(kernel_name, accel_name):
    """The hand-chosen parameters for a kernel on an accelerator."""
    table = _MANUAL_PARAMS.get(kernel_name, {"*": VariantParams()})
    return table.get(accel_name, table["*"])


def _fallback_chain(params):
    """Degrade hand parameters toward the universal fallback (a manual
    implementer would also shrink the unroll until it fits)."""
    chain = [params]
    current = params
    while current.unroll > 1:
        current = VariantParams(
            unroll=current.unroll // 2,
            use_join=current.use_join,
            use_indirect=current.use_indirect,
            use_atomic=current.use_atomic,
            partial_sums=current.partial_sums,
        )
        chain.append(current)
    if params.use_join or params.use_indirect:
        chain.append(VariantParams())
    return chain


def manual_compile(kernel_name, adg, accel_name=None, scale=1.0,
                   sched_iters=400, seeds=(0, 1, 2)):
    """Produce the manually tuned implementation for ``kernel_name``.

    Returns a :class:`CompiledKernel` whose control program carries
    hand-scheduled issue costs. Raises :class:`CompilationError` when not
    even the fallback maps (the hardware genuinely cannot run it).
    """
    accel_name = accel_name or adg.name
    if kernel_name == "fft":
        workload = make_fft_kernel(
            n=_scaled_fft_size(scale), manual_coalesce=True
        )
    else:
        workload = make_kernel(kernel_name, scale)
    model = PerformanceModel(cycles_per_command=MANUAL_ISSUE_CYCLES)

    last_error = None
    best_result = None
    for params in _fallback_chain(manual_params_for(kernel_name,
                                                    accel_name)):
        try:
            scope = workload.build(params)
        except CompilationError as exc:
            last_error = exc
            continue
        features = adg.feature_set()
        if params.use_join and not features.stream_join:
            continue
        if params.use_indirect and not features.indirect:
            continue
        if params.use_atomic and not features.atomic_update:
            continue
        best = None
        for seed in seeds:
            scheduler = SpatialScheduler(
                adg, rng=DeterministicRng(("manual", kernel_name, seed)),
                max_iters=sched_iters,
            )
            schedule, cost = scheduler.schedule(scope)
            if cost.is_legal and (best is None or cost.scalar() <
                                  best[1].scalar()):
                best = (schedule, cost, scheduler)
            if best is not None and best[1].is_legal and seed >= seeds[0]:
                break  # first legal seed is enough; extras are backup
        if best is None:
            continue
        schedule, cost, scheduler = best
        timing = compute_timing(schedule, scheduler.routing)
        perf = model.estimate(scope, schedule, timing)
        program = generate_control_program(scope, schedule)
        for command in program:
            if command.kind in (CommandKind.ISSUE_STREAM,
                                CommandKind.ISSUE_CONST,
                                CommandKind.ISSUE_RECUR):
                command.issue_cycles = MANUAL_ISSUE_CYCLES
        result = CompiledKernel(
            kernel_name=kernel_name,
            params=params,
            scope=scope,
            schedule=schedule,
            cost=cost,
            perf=perf,
            program=program,
        )
        result.workload = workload
        # Manual tuning is empirical: keep the fastest variant tried.
        if best_result is None or perf.cycles < best_result.perf.cycles:
            best_result = result
    if best_result is not None:
        return best_result
    raise CompilationError(
        f"manual mapping of {kernel_name!r} failed on {accel_name!r}: "
        f"{last_error}"
    )


def _scaled_fft_size(scale):
    from repro.workloads.registry import _pow2
    from repro.workloads.spec import PAPER_SIZES

    return _pow2(PAPER_SIZES["fft"]["n"], scale, floor=32)
