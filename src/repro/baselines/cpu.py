"""Analytic CPU reference model.

Stands in for the paper's Intel Xeon Silver 4116 @ 2.10 GHz running
GCC -O3 C code: an out-of-order core sustaining a few scalar ops per
cycle, bounded by memory bandwidth for streaming kernels. Used only to
normalize accelerator speedups — absolute CPU fidelity is out of scope
(DESIGN.md records the substitution).
"""

from repro.ir.region import as_stream_list
from repro.ir.stream import ConstStream, RecurrenceStream

#: Sustained scalar instructions per cycle (superscalar, -O3).
CPU_IPC = 3.0
#: Bytes per cycle from the cache hierarchy.
CPU_BYTES_PER_CYCLE = 16.0
#: Branch/loop overhead multiplier for irregular control flow.
IRREGULAR_PENALTY = 1.6


def cpu_cycles(kernel, scope=None):
    """Estimated CPU cycles for one kernel execution.

    Uses the kernel's scalar instruction count per instance and the
    fallback scope's stream volumes for traffic.
    """
    scope = scope or kernel.build(kernel.fallback_params())
    total_insts = 0.0
    total_bytes = 0.0
    irregular = False
    for region in scope.regions:
        instances = max(1, region.instance_count()
                        or region.expected_instances)
        per_instance = region.source_insts or (
            len(region.dfg.instructions()) + 3
        )
        total_insts += instances * per_instance * region.frequency
        for binding in list(region.input_streams.values()) + list(
            region.output_streams.values()
        ):
            for stream in as_stream_list(binding):
                if isinstance(stream, (ConstStream, RecurrenceStream)):
                    continue
                total_bytes += (
                    stream.volume() * stream.word_bytes * region.frequency
                )
        if region.join_spec is not None or any(
            getattr(s, "scalarized", False) or hasattr(s, "index")
            for s in region.streams()
        ):
            irregular = True
    compute_cycles = total_insts / CPU_IPC
    memory_cycles = total_bytes / CPU_BYTES_PER_CYCLE
    cycles = max(compute_cycles, memory_cycles)
    if irregular:
        cycles *= IRREGULAR_PENALTY
    return max(1.0, cycles)
