"""Configuration-path generation (Section VI).

Configuration messages ride the ordinary network (one extra bit marks
them), following static paths fixed at hardware-generation time. The
problem: find ``p`` directed walks, starting at nodes the control core
can reach, that together visit every configurable node, minimizing the
longest walk (configuration time is dominated by it). The lower bound
for ``n`` nodes and ``p`` paths is ``ceil(n / p)``.

Approach (as in the paper): grow initial paths spanning-tree style, then
iteratively cut a node from the longest path and splice it into a nearby
shorter path until the maximum length converges.
"""

from repro.errors import HwGenError
from repro.utils.bits import ceil_div


def _adjacency(adg):
    """Directed adjacency over all components (every unit forwards
    configuration messages)."""
    neighbors = {name: set() for name in adg.node_names()}
    for link in adg.links():
        neighbors[link.src].add(link.dst)
    return {name: sorted(peers) for name, peers in neighbors.items()}


def _shortest_hops(adjacency, src):
    """BFS hop counts from ``src``."""
    distance = {src: 0}
    frontier = [src]
    while frontier:
        next_frontier = []
        for name in frontier:
            for peer in adjacency[name]:
                if peer not in distance:
                    distance[peer] = distance[name] + 1
                    next_frontier.append(peer)
        frontier = next_frontier
    return distance


def _bfs_path(adjacency, src, targets):
    """Shortest directed path from ``src`` to the nearest of ``targets``.

    Returns the node list excluding ``src`` (empty if src is a target),
    or None when unreachable.
    """
    if src in targets:
        return []
    parent = {src: None}
    frontier = [src]
    while frontier:
        next_frontier = []
        for name in frontier:
            for peer in adjacency[name]:
                if peer in parent:
                    continue
                parent[peer] = name
                if peer in targets:
                    path = [peer]
                    back = name
                    while back != src:
                        path.append(back)
                        back = parent[back]
                    path.reverse()
                    return path
                next_frontier.append(peer)
        frontier = next_frontier
    return None


def generate_config_paths(adg, num_paths, max_rounds=200):
    """Generate ``num_paths`` configuration walks covering every node.

    Returns a list of node-name lists (walks may revisit nodes used as
    through-hops). Raises :class:`HwGenError` if some node is unreachable
    from the control core.
    """
    adjacency = _adjacency(adg)
    core = adg.control_core()
    seed = core.name if core is not None else adg.node_names()[0]
    members = [n for n in adg.node_names() if n != seed]
    if not members:
        return [[seed]]

    reachable = _shortest_hops(adjacency, seed)
    unreachable = [n for n in members if n not in reachable]
    if unreachable:
        raise HwGenError(
            "nodes unreachable by configuration messages: "
            f"{sorted(unreachable)[:5]}"
        )

    num_paths = max(1, min(num_paths, len(members)))

    # --- Construction: grow p walks simultaneously, always extending the
    # currently shortest walk toward its nearest uncovered node; every
    # node a walk passes through counts as covered (it observes the
    # config words going by). This is the balanced spanning-tree-style
    # initialization.
    remaining = set(members)
    walks = [{"nodes": [], "position": seed} for _ in range(num_paths)]
    if core is None:
        # The seed is itself a configurable node: it heads the first walk.
        walks[0]["nodes"].append(seed)
    while remaining:
        walk = min(walks, key=lambda w: len(w["nodes"]))
        hop = _bfs_path(adjacency, walk["position"], remaining)
        if hop is None:
            raise HwGenError(
                "cannot extend configuration walk from "
                f"{walk['position']!r}"
            )
        walk["nodes"].extend(hop)
        walk["position"] = hop[-1]
        remaining -= set(hop)
    paths = [w["nodes"] for w in walks if w["nodes"]]

    # --- Iterative improvement: cut the longest walk's tail target and
    # re-home it to the walk that absorbs it most cheaply.
    for _ in range(max_rounds):
        if not _improve_once(adjacency, seed, paths):
            break
    return paths


def _walk_cluster(adjacency, seed, cluster):
    """Greedy walk visiting every cluster node, starting from the seed's
    nearest cluster node; connecting hops may pass through any node."""
    remaining = set(cluster)
    walk = []
    position = seed
    while remaining:
        hop = _bfs_path(adjacency, position, remaining)
        if hop is None:
            raise HwGenError(
                f"cannot extend configuration walk from {position!r}"
            )
        walk.extend(hop)
        position = walk[-1] if walk else seed
        remaining.discard(position)
    return walk


def _improve_once(adjacency, seed, paths):
    """Cut exclusively-covered nodes off the longest walk's tail and
    splice them into the walk that absorbs them most cheaply; keep the
    move only if the maximum length strictly decreases."""
    longest_index = max(range(len(paths)), key=lambda i: len(paths[i]))
    longest = paths[longest_index]
    current_max = len(longest)
    if current_max <= 1 or len(paths) == 1:
        return False
    covered_by_others = set()
    for index, path in enumerate(paths):
        if index != longest_index:
            covered_by_others.update(path)

    # Find the longest removable tail: all its exclusive nodes must be
    # re-homed; shared nodes just disappear.
    for cut in range(1, current_max):
        tail = longest[current_max - cut:]
        orphans = [n for n in tail if n not in covered_by_others
                   and n not in longest[:current_max - cut]]
        if not orphans:
            paths[longest_index] = longest[:current_max - cut]
            return True
        if cut > 1:
            break  # only consider single-segment rehoming beyond free cuts
        # Re-home the orphan(s) to the cheapest other walk.
        best = None
        for other_index, other in enumerate(paths):
            if other_index == longest_index or not other:
                continue
            extension = []
            position = other[-1]
            feasible = True
            for orphan in orphans:
                hop = _bfs_path(adjacency, position, {orphan})
                if hop is None:
                    feasible = False
                    break
                extension.extend(hop)
                position = orphan
            if not feasible:
                continue
            grown = len(other) + len(extension)
            shrunk = current_max - cut
            new_max = max(
                [len(p) for i, p in enumerate(paths)
                 if i not in (longest_index, other_index)]
                + [grown, shrunk]
            )
            if new_max < current_max and (best is None or new_max < best[0]):
                best = (new_max, other_index, extension)
        if best is not None:
            _, other_index, extension = best
            paths[longest_index] = longest[:current_max - cut]
            paths[other_index] = paths[other_index] + extension
            return True
    return False


def ideal_longest_path(node_count, num_paths):
    """The paper's lower bound: ceil(n / p)."""
    return ceil_div(node_count, num_paths)


def longest_path_length(paths):
    return max(len(path) for path in paths)


def config_cycles(adg, num_paths=3, word_bits=64):
    """Configuration time estimate: the longest path is traversed one hop
    per cycle, delivering one config word per node visit."""
    paths = generate_config_paths(adg, num_paths)
    return longest_path_length(paths)


def coverage(paths, adg):
    """Which configurable nodes the paths cover (for validation)."""
    seen = set()
    for path in paths:
        seen.update(path)
    core = adg.control_core()
    needed = set(adg.node_names())
    if core is not None:
        needed.discard(core.name)
    return needed - seen
