"""Hardware generation (Section VI).

* :mod:`repro.hwgen.bitstream` — per-component configuration encoding:
  switch routing selections, PE opcodes/operand sources/delays, sync-
  element delays, with destination IDs for network-delivered
  configuration.
* :mod:`repro.hwgen.config_path` — configuration-path generation for
  arbitrary topologies: spanning-tree initialization plus the iterative
  longest-path-reduction heuristic (Figure 13).
* :mod:`repro.hwgen.verilog` — structural RTL emission (a stand-in for
  the paper's Chisel backend).
"""

from repro.hwgen.bitstream import Bitstream, encode_bitstream
from repro.hwgen.config_path import (
    config_cycles,
    generate_config_paths,
    ideal_longest_path,
)
from repro.hwgen.verilog import emit_verilog

__all__ = [
    "Bitstream",
    "encode_bitstream",
    "generate_config_paths",
    "ideal_longest_path",
    "config_cycles",
    "emit_verilog",
]
