"""Configuration bitstream encoding (Section VI).

"Each component of the spatial architecture has local registers to store
the bitstream that encodes the programmable information: A switch's
bitstream encodes the routing information. A PE's bitstream encodes
instruction opcodes, execution timing (for static PEs only), and
instruction tags (for shared PEs only). A synchronization element's
bitstream encodes the cycles of delay."

Configuration messages carry a destination ID so components keep their
own words and forward the rest; the encoder therefore prefixes each
component's payload with its node ID.
"""

from dataclasses import dataclass, field

from repro.adg.components import ProcessingElement, Switch, SyncElement
from repro.errors import HwGenError
from repro.ir.dfg import NodeKind
from repro.isa.opcodes import OPCODES
from repro.utils.bits import bits_for_value, ceil_div

#: Stable opcode numbering for the encoding.
OPCODE_IDS = {name: i for i, name in enumerate(sorted(OPCODES))}


@dataclass
class NodeConfig:
    """One component's configuration: named fields plus the packed bits."""

    node: str
    fields: dict = field(default_factory=dict)   # name -> (value, width)
    payload: int = 0
    payload_bits: int = 0

    def pack(self):
        """Pack fields (sorted by name) into the payload."""
        value = 0
        width = 0
        for name in sorted(self.fields):
            item, item_width = self.fields[name]
            if item < 0 or item >= (1 << item_width):
                raise HwGenError(
                    f"{self.node}.{name}: value {item} does not fit in "
                    f"{item_width} bits"
                )
            value = (value << item_width) | item
            width += item_width
        self.payload = value
        self.payload_bits = width
        return self

    def unpack(self, field_widths):
        """Inverse of :meth:`pack` given the ordered field widths."""
        names = sorted(field_widths)
        result = {}
        value = self.payload
        for name in reversed(names):
            width = field_widths[name]
            result[name] = value & ((1 << width) - 1)
            value >>= width
        return result


@dataclass
class Bitstream:
    """The whole design's configuration."""

    configs: dict = field(default_factory=dict)  # node -> NodeConfig
    id_bits: int = 8

    def total_bits(self):
        return sum(
            self.id_bits + cfg.payload_bits for cfg in self.configs.values()
        )

    def words(self, word_bits=64):
        """Configuration words transmitted (one header+payload chunk per
        component, padded to the network word size)."""
        return sum(
            ceil_div(self.id_bits + cfg.payload_bits, word_bits)
            for cfg in self.configs.values()
        )


def _in_link_index(adg, node_name, link_id):
    """Position of ``link_id`` among the node's input links."""
    links = adg.in_links(node_name)
    for index, link in enumerate(links):
        if link.link_id == link_id:
            return index, len(links)
    raise HwGenError(f"link {link_id} does not enter {node_name}")


def _out_link_index(adg, node_name, link_id):
    links = adg.out_links(node_name)
    for index, link in enumerate(links):
        if link.link_id == link_id:
            return index, len(links)
    raise HwGenError(f"link {link_id} does not leave {node_name}")


def encode_bitstream(adg, schedule):
    """Encode a schedule into per-component configuration.

    Returns a :class:`Bitstream`. Unused components still receive a
    (minimal) disable word — they must observe the config stream to
    forward it.
    """
    node_names = adg.node_names()
    id_bits = bits_for_value(max(1, len(node_names) - 1))
    stream = Bitstream(id_bits=id_bits)

    switch_routes = {}   # switch -> {out_idx: in_idx}
    pe_sources = {}      # pe -> {operand_index: in_idx}
    for edge, links in schedule.routes.items():
        for first, second in zip(links, links[1:]):
            first_link = adg.link(first)
            node = adg.node(first_link.dst)
            if isinstance(node, Switch):
                in_idx, _ = _in_link_index(adg, node.name, first)
                out_idx, _ = _out_link_index(adg, node.name, second)
                existing = switch_routes.setdefault(node.name, {})
                if existing.get(out_idx, in_idx) != in_idx:
                    raise HwGenError(
                        f"switch {node.name}: output {out_idx} driven by "
                        "two different inputs"
                    )
                existing[out_idx] = in_idx
        if links:
            final = adg.link(links[-1])
            consumer = adg.node(final.dst)
            if isinstance(consumer, ProcessingElement):
                in_idx, _ = _in_link_index(adg, consumer.name, links[-1])
                pe_sources.setdefault(consumer.name, {})[
                    (edge.dst_id, edge.operand_index)
                ] = in_idx

    for name in node_names:
        component = adg.node(name)
        config = NodeConfig(node=name)
        if isinstance(component, Switch):
            _encode_switch(adg, component, switch_routes.get(name, {}),
                           config)
        elif isinstance(component, ProcessingElement):
            _encode_pe(adg, schedule, component,
                       pe_sources.get(name, {}), config)
        elif isinstance(component, SyncElement):
            _encode_sync(schedule, component, config)
        else:
            config.fields["enable"] = (0, 1)
        stream.configs[name] = config.pack()
    return stream


def _encode_switch(adg, switch, routes, config):
    out_count = max(1, len(adg.out_links(switch.name)))
    in_count = max(1, len(adg.in_links(switch.name)))
    select_bits = bits_for_value(in_count)
    for out_idx in range(out_count):
        chosen = routes.get(out_idx)
        # in_count encodes "disabled".
        value = chosen if chosen is not None else in_count
        config.fields[f"route{out_idx:03d}"] = (value, select_bits)


def _encode_pe(adg, schedule, pe, sources, config):
    opcode_bits = bits_for_value(len(OPCODE_IDS))
    in_count = max(1, len(adg.in_links(pe.name)))
    select_bits = bits_for_value(in_count)
    delay_bits = bits_for_value(max(1, pe.delay_fifo_depth))

    slot = 0
    for vertex, hw_name in sorted(
        schedule.placement.items(), key=lambda item: str(item[0])
    ):
        if hw_name != pe.name:
            continue
        node = schedule.node_of(vertex)
        if node.kind is not NodeKind.INSTR:
            continue
        prefix = f"slot{slot:02d}_"
        config.fields[prefix + "opcode"] = (
            OPCODE_IDS[node.op] + 1, opcode_bits
        )
        for operand_index in range(len(node.operands)):
            in_idx = sources.get((vertex.node_id, operand_index), 0)
            config.fields[prefix + f"src{operand_index}"] = (
                in_idx, select_bits
            )
            if not pe.is_dynamic:
                from repro.scheduler.schedule import Edge

                refs = node.operands[operand_index]
                edge = Edge(vertex.region, refs.node_id, vertex.node_id,
                            operand_index, refs.lane)
                delay = schedule.input_delays.get(edge, 0)
                config.fields[prefix + f"delay{operand_index}"] = (
                    min(delay, pe.delay_fifo_depth), delay_bits
                )
        if pe.is_shared:
            config.fields[prefix + "tag"] = (
                slot, bits_for_value(max(1, pe.max_instructions - 1))
            )
        if node.reduction:
            config.fields[prefix + "accum"] = (1, 1)
            config.fields[prefix + "emit_every"] = (
                min(node.emit_every, (1 << 16) - 1), 16
            )
        slot += 1
    if slot == 0:
        config.fields["slot00_opcode"] = (0, opcode_bits)  # disabled
    config.fields["num_slots"] = (
        slot, bits_for_value(max(1, pe.max_instructions))
    )


def _encode_sync(schedule, element, config):
    # Which DFG port (if any) this element hosts, plus FIFO behaviour.
    hosted = 0
    for vertex, hw_name in schedule.placement.items():
        if hw_name == element.name:
            hosted = 1
            break
    config.fields["enable"] = (hosted, 1)
    config.fields["depth"] = (
        element.depth, bits_for_value(max(1, element.depth))
    )
