"""Least-squares power/area regression (Section V-C).

"A dataset of all hardware modules with a sampling of possible parameters
(number of I/O links, data width, register file size etc.) was synthesized
to build the analytical model." One linear model per component type, over
hand-crafted physically-motivated features, fitted with numpy lstsq.
"""

import numpy as np

from repro.adg.components import (
    ControlCore,
    DelayFifo,
    Memory,
    ProcessingElement,
    Switch,
    SyncElement,
)
from repro.errors import EstimationError
from repro.isa.fu import select_functional_units


def component_features(component, in_links=2, out_links=2):
    """Feature vector for one component (type-specific, fixed length)."""
    width_ratio = component.width / 64.0
    if isinstance(component, ProcessingElement):
        units = select_functional_units(component.op_names)
        fu_gates = sum(unit.gate_cost for unit in units) * width_ratio
        window = component.max_instructions if component.is_dynamic else 0
        return [
            1.0,
            fu_gates,
            in_links * width_ratio,
            component.register_file_size * width_ratio,
            (0.0 if component.is_dynamic
             else in_links * component.delay_fifo_depth * width_ratio),
            float(component.is_dynamic),
            window,
            float(component.is_dynamic) * (in_links + out_links),
            float(component.is_shared) * component.max_instructions,
            float(component.decomposable_to < component.width),
        ]
    if isinstance(component, Switch):
        lanes = component.width // component.decomposable_to
        return [
            1.0,
            in_links * out_links * width_ratio,
            (in_links * out_links * width_ratio) * np.log2(max(1, lanes)),
            float(component.is_dynamic) * (in_links + out_links),
            float(component.flop_output) * out_links * width_ratio,
            float(component.routing_table_size),
        ]
    if isinstance(component, Memory):
        # DMA nodes model the L2 interface, not storage: their capacity is
        # nominal and must not activate the SRAM-macro features.
        is_dma = component.kind.value == "dma"
        kb = 0.0 if is_dma else component.capacity_bytes / 1024.0
        return [
            1.0,
            kb,
            kb * np.log2(max(1, component.banks)),
            float(component.num_stream_slots),
            float(component.indirect),
            float(component.indirect) * component.banks,
            float(component.atomic_update) * component.banks,
            float(component.coalescing),
            float(component.width_bytes),
            float(is_dma),
        ]
    if isinstance(component, SyncElement):
        words = component.depth * max(1, component.width // 64)
        return [1.0, float(words), float(component.lanes64)]
    if isinstance(component, DelayFifo):
        return [1.0, component.depth * width_ratio]
    if isinstance(component, ControlCore):
        return [
            1.0,
            float(component.programmable),
            float(component.programmable) * component.issue_width,
            float(component.command_queue_depth),
        ]
    raise EstimationError(
        f"no feature extractor for {type(component).__name__}"
    )


class ComponentRegression:
    """Fitted area & power model for one component type."""

    def __init__(self, type_name, area_weights, power_weights):
        self.type_name = type_name
        self.area_weights = np.asarray(area_weights)
        self.power_weights = np.asarray(power_weights)

    def predict(self, features):
        """Return ``(area_mm2, power_mw)`` (clamped non-negative)."""
        x = np.asarray(features, dtype=float)
        if x.shape != self.area_weights.shape:
            raise EstimationError(
                f"{self.type_name}: expected {self.area_weights.shape[0]} "
                f"features, got {x.shape[0]}"
            )
        return (
            max(0.0, float(x @ self.area_weights)),
            max(0.0, float(x @ self.power_weights)),
        )


def fit_regression(dataset):
    """Fit one :class:`ComponentRegression` per component type.

    ``dataset`` is the output of
    :func:`repro.estimation.synth_db.generate_dataset`.
    Returns ``{type_name: ComponentRegression}``.
    """
    models = {}
    for type_name, rows in dataset.items():
        if not rows:
            continue
        features = np.asarray([row[0] for row in rows], dtype=float)
        areas = np.asarray([row[1] for row in rows], dtype=float)
        powers = np.asarray([row[2] for row in rows], dtype=float)
        area_weights, *_ = np.linalg.lstsq(features, areas, rcond=None)
        power_weights, *_ = np.linalg.lstsq(features, powers, rcond=None)
        models[type_name] = ComponentRegression(
            type_name, area_weights, power_weights
        )
    return models


def validation_error(models, dataset):
    """Mean relative prediction error per component type (model QA)."""
    errors = {}
    for type_name, rows in dataset.items():
        model = models.get(type_name)
        if model is None:
            continue
        rel = []
        for features, area, power in rows:
            pred_area, pred_power = model.predict(features)
            if area > 0:
                rel.append(abs(pred_area - area) / area)
            if power > 0:
                rel.append(abs(pred_power - power) / power)
        errors[type_name] = float(np.mean(rel)) if rel else 0.0
    return errors
