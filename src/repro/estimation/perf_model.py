"""The analytical performance model (Section V-B).

``IPC = #Insts x ActivityRatio`` where the activity ratio is limited
either by memory bandwidth or by dependences:

* the **memory** ratio compares the cycles each memory needs to service a
  region's line requests (indirect requests are spread over banks)
  against the compute pipeline's cycles;
* the **dependence** ratio is ``concurrent instances that can hide the
  dependence / dependence latency`` — accumulators and self-recurrence
  streams serialize successive instances unless the compiler provisioned
  parallel chains (``partial_sums``) or deep-enough recycling buffers
  (``recurrence_concurrency``).

Cycle estimates feed both code-generation version selection
(Section IV-C) and the DSE objective (Section V).
"""

from dataclasses import dataclass, field

from repro.adg.components import Memory
from repro.ir.region import as_stream_list
from repro.ir.stream import (
    ConstStream,
    IndirectStream,
    RecurrenceStream,
    stream_requests,
)
from repro.isa.opcodes import OPCODES


@dataclass
class RegionPerf:
    """Per-region estimate."""

    instances: int = 0
    ii: int = 1
    bandwidth_ratio: float = 1.0
    dependence_ratio: float = 1.0
    activity: float = 1.0
    pipeline_latency: int = 0
    control_cycles: int = 0
    cycles: float = 0.0
    memory_cycles: dict = field(default_factory=dict)


@dataclass
class PerfEstimate:
    """Whole-scope estimate."""

    cycles: float = 0.0
    ipc: float = 0.0
    regions: dict = field(default_factory=dict)

    def __repr__(self):
        return f"PerfEstimate(cycles={self.cycles:.0f}, ipc={self.ipc:.2f})"


class PerformanceModel:
    """Analytical cycle/IPC estimator.

    Parameters
    ----------
    cycles_per_command:
        Control-core cycles to issue one stream command (stream-dataflow
        intrinsics are a few instructions each).
    config_cycles:
        One-off configuration time per scope; callers pass the value the
        hardware generator computed for the design's config paths.
    """

    def __init__(self, cycles_per_command=4, config_cycles=64):
        self.cycles_per_command = cycles_per_command
        self.config_cycles = config_cycles

    # ------------------------------------------------------------------
    def estimate(self, scope, schedule=None, timing=None):
        """Estimate ``scope``'s execution on the schedule's hardware.

        ``timing`` is a :class:`~repro.scheduler.timing.TimingResult`;
        when absent (or when the region was not mapped) structural
        defaults are used, which lets the model run pre-scheduling for
        version pruning.
        """
        estimate = PerfEstimate()
        barrier_groups = self._barrier_groups(scope)
        total_cycles = float(self.config_cycles)
        total_insts = 0.0
        for group in barrier_groups:
            group_cycles = 0.0
            group_memory_cycles = {}
            for region in group:
                perf = self._estimate_region(region, schedule, timing)
                estimate.regions[region.name] = perf
                group_cycles = max(group_cycles, perf.cycles * region.frequency)
                insts = region.source_insts or len(region.dfg.instructions())
                total_insts += insts * perf.instances * region.frequency
                for memory_name, mem_cycles in perf.memory_cycles.items():
                    group_memory_cycles[memory_name] = (
                        group_memory_cycles.get(memory_name, 0.0)
                        + mem_cycles * region.frequency
                    )
            # Concurrent regions share each memory's bandwidth: the group
            # cannot finish before any memory finishes its traffic.
            if group_memory_cycles:
                group_cycles = max(
                    group_cycles, max(group_memory_cycles.values())
                )
            total_cycles += group_cycles
        estimate.cycles = max(1.0, total_cycles)
        estimate.ipc = total_insts / estimate.cycles
        return estimate

    def _barrier_groups(self, scope):
        """Regions between barriers run concurrently; barriers serialize."""
        groups = []
        current = []
        barrier_set = set(scope.barriers)
        for region in scope.regions:
            current.append(region)
            if region.name in barrier_set:
                groups.append(current)
                current = []
        if current:
            groups.append(current)
        return groups or [[]]

    # ------------------------------------------------------------------
    def _estimate_region(self, region, schedule, timing):
        perf = RegionPerf()
        perf.instances = self._instances(region)
        region_timing = None
        if timing is not None:
            region_timing = timing.regions.get(region.name)
        if region_timing is not None:
            perf.ii = region_timing.ii
            perf.pipeline_latency = region_timing.latency
            recurrence = region_timing.recurrence_latency
        else:
            perf.ii = 1
            perf.pipeline_latency = region.dfg.longest_path_latency()
            recurrence = max(
                (OPCODES[n.op].latency
                 for n in region.dfg.instructions() if n.reduction),
                default=0,
            )

        perf.dependence_ratio = self._dependence_ratio(region, recurrence)
        perf.bandwidth_ratio, perf.memory_cycles = self._bandwidth_ratio(
            region, schedule, perf.instances, perf.ii
        )
        perf.activity = min(perf.bandwidth_ratio, perf.dependence_ratio)
        perf.control_cycles = self.cycles_per_command * len(region.streams())
        busy = perf.instances * perf.ii / max(perf.activity, 1e-9)
        # The core issues stream commands while earlier streams flow, so
        # control overlaps with compute; whichever pipeline is longer
        # bounds the region.
        perf.cycles = max(busy, perf.control_cycles) + perf.pipeline_latency
        return perf

    def _instances(self, region):
        try:
            count = region.instance_count()
        except Exception:
            count = 0
        return count or region.expected_instances or 1

    def _dependence_ratio(self, region, recurrence_latency):
        """min(1, concurrency / latency) per Section V-B."""
        if recurrence_latency <= 1:
            return 1.0
        concurrency = max(
            region.metadata.get("partial_sums", 1),
            region.metadata.get("recurrence_concurrency", 1),
        )
        return min(1.0, concurrency / recurrence_latency)

    def _bandwidth_ratio(self, region, schedule, instances, ii):
        """Per-memory memory cycles and the resulting activity ratio.

        Returns ``(ratio, {memory_name: cycles})``.
        """
        if instances <= 0:
            return 1.0, {}
        memory_cycles = {}
        for port, binding in list(region.input_streams.items()) + list(
            region.output_streams.items()
        ):
            for stream in as_stream_list(binding):
                if isinstance(stream, (ConstStream, RecurrenceStream)):
                    continue
                memory = self._bound_memory(schedule, region, port)
                line_words = 8
                banks = 1
                coalescing = False
                if memory is not None:
                    line_words = max(
                        1, memory.width_bytes // stream.word_bytes
                    )
                    banks = memory.banks
                    coalescing = memory.coalescing
                key = memory.name if memory is not None else "__default__"
                requests = stream_requests(
                    stream, line_words=line_words, coalescing=coalescing
                )
                if getattr(stream, "scalarized", False):
                    # Fallback: the control core dereferences each index
                    # itself (Section IV-C "generate scalar operations").
                    from repro.compiler.transforms.indirect import (
                        SCALAR_ACCESS_CYCLES,
                    )

                    cycles = float(stream.volume() * SCALAR_ACCESS_CYCLES)
                elif isinstance(stream, IndirectStream):
                    # Indirect requests spread across banks.
                    cycles = requests / max(1, banks)
                else:
                    cycles = float(requests)
                memory_cycles[key] = memory_cycles.get(key, 0.0) + cycles
        if not memory_cycles:
            return 1.0, {}
        compute_cycles = max(1.0, float(instances * ii))
        worst = max(memory_cycles.values())
        if worst <= 0:
            return 1.0, memory_cycles
        return min(1.0, compute_cycles / worst), memory_cycles

    def _bound_memory(self, schedule, region, port):
        if schedule is None:
            return None
        name = schedule.stream_binding.get((region.name, port))
        if name is None or not schedule.adg.has_node(name):
            return None
        memory = schedule.adg.node(name)
        return memory if isinstance(memory, Memory) else None
