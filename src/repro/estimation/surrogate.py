"""Learned surrogate cost model for multi-fidelity DSE.

The explorer's full candidate evaluation (schedule repair + compile +
analytical estimation) costs seconds; ranking a generation only needs
*relative* quality. :class:`SurrogateModel` is a numpy ridge regressor
over the hand-built ADG graph features of
:func:`repro.adg.features.graph_feature_vector` that predicts, per
candidate:

* **schedulability** — the probability the kernel set maps at all
  (linear-probability fit on realized 0/1 outcomes, clamped);
* **log-objective** — ``log(perf^2/mm^2)`` (fit on successful
  evaluations only);
* **per-kernel log-cycles** — one output column per kernel observed in
  the training history.

Training is *online and deterministic*: the explorer appends every
realized (fully evaluated) candidate to the model's buffer in
candidate-index order, and the model refits on the whole buffer each
time the sample count crosses a multiple of ``recalibrate_every``.
Model state is therefore a pure function of the ordered evaluation
history — ``workers=N`` reproduces ``workers=1``, and checkpointing the
buffer bit-exactly (it pickles along with the explorer state) resumes
to the identical trajectory.

Every refit measures **calibration error** on the predictions made
since the previous refit (predictions are recorded at scoring time and
resolved when the realized outcome arrives), so drift is visible in
telemetry rather than silently compounding:

* ``objective_mae`` — mean ``|predicted - realized|`` log-objective;
* ``schedulable_brier`` — mean squared error of the schedulability
  probability;
* ``cycles_log_mae`` — mean per-kernel log-cycle error.
"""

import math
from dataclasses import dataclass, field

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

__all__ = ["SurrogatePrediction", "SurrogateModel"]

#: Floor for the schedulability factor in the ranking score: a candidate
#: predicted unmappable is heavily penalized, never erased (log(1e-3)).
_MIN_SCHED_PROB = 1e-3

#: Ridge regularization strength (features are max-abs normalized).
_RIDGE_LAMBDA = 1e-3


@dataclass
class SurrogatePrediction:
    """One candidate's surrogate estimate."""

    schedulable: float = 1.0        # clamped to [_MIN_SCHED_PROB, 1]
    log_objective: float = 0.0
    cycles: dict = field(default_factory=dict)  # kernel -> cycles
    trained: bool = False           # False until the first refit

    @property
    def score(self):
        """The ranking score: expected log-objective, i.e. predicted
        log-objective discounted by the mapping probability."""
        return self.log_objective + math.log(self.schedulable)


class SurrogateModel:
    """Online ridge regressor over ADG graph features.

    Parameters
    ----------
    recalibrate_every:
        Refit (and report calibration error) each time the training
        buffer grows past a multiple of this count. Also the minimum
        sample count before the model ranks at all — an untrained
        model predicts a neutral score for every candidate, which
        makes the wide-generation ranking degrade to index order.
    """

    def __init__(self, recalibrate_every=16):
        if _np is None:  # pragma: no cover - numpy ships with toolchain
            raise RuntimeError(
                "repro.estimation.surrogate requires numpy"
            )
        self.recalibrate_every = max(1, int(recalibrate_every))
        #: Ordered realized-evaluation history, the model's whole truth:
        #: ``(features, ok, log_objective|None, {kernel: log_cycles})``.
        self.buffer = []
        #: Buffer length at the last refit (0 = never fitted).
        self.fitted_count = 0
        self.refits = 0
        #: Predictions awaiting their realized outcome, resolved at
        #: :meth:`observe` time: ``(pred, ok, log_obj|None, cycles)``.
        self._pending = []
        #: One calibration record per refit (also surfaced in
        #: telemetry): the drift check the refit policy exists for.
        self.calibration_log = []
        self._weights = None        # (n_features+1, n_targets)
        self._scale = None          # per-column max-abs normalizer
        self._kernel_names = []     # cycle-column order

    # -- prediction ----------------------------------------------------
    @property
    def trained(self):
        return self._weights is not None

    def predict(self, features):
        """Return a :class:`SurrogatePrediction` for one feature vector.

        Untrained models return a neutral prediction (score 0 for every
        candidate), so ranking degrades to stable index order until
        ``recalibrate_every`` realized evaluations exist.
        """
        if not self.trained:
            return SurrogatePrediction(trained=False)
        row = _np.ones(len(features) + 1)
        row[1:] = _np.asarray(features, dtype=float) / self._scale
        raw = row @ self._weights
        schedulable = min(1.0, max(_MIN_SCHED_PROB, float(raw[0])))
        log_objective = float(raw[1])
        cycles = {
            name: math.exp(float(raw[2 + slot]))
            for slot, name in enumerate(self._kernel_names)
        }
        return SurrogatePrediction(
            schedulable=schedulable, log_objective=log_objective,
            cycles=cycles, trained=True,
        )

    @staticmethod
    def rank(predictions):
        """Candidate indices best-first; ties keep the lowest index, so
        an untrained model yields the identity permutation."""
        return sorted(
            range(len(predictions)),
            key=lambda index: (-predictions[index].score, index),
        )

    # -- training ------------------------------------------------------
    def observe(self, features, ok, objective, cycles=None,
                prediction=None):
        """Append one realized evaluation to the training buffer.

        ``objective`` is the realized DSE score (may be ``-inf`` for
        failed/over-budget candidates); ``cycles`` maps kernel name to
        realized cycle count. ``prediction`` — the estimate this model
        produced for the candidate at scoring time, if any — is held
        back for the next refit's calibration-error report.
        """
        finite = ok and objective not in (None, float("-inf")) \
            and objective > 0
        log_objective = math.log(objective) if finite else None
        log_cycles = {
            name: math.log(value)
            for name, value in (cycles or {}).items() if value > 0
        } if finite else {}
        self.buffer.append(
            (list(features), bool(ok), log_objective, log_cycles)
        )
        if prediction is not None and prediction.trained:
            self._pending.append(
                (prediction, bool(ok), log_objective, log_cycles)
            )

    def maybe_refit(self):
        """Refit when the buffer crossed a ``recalibrate_every``
        boundary since the last fit; returns the new calibration record
        (or None when no refit happened)."""
        due = (len(self.buffer) // self.recalibrate_every) \
            * self.recalibrate_every
        if due <= self.fitted_count or due == 0:
            return None
        calibration = self._calibration_error()
        self._fit(self.buffer)
        self.fitted_count = len(self.buffer)
        self.refits += 1
        record = {
            "refit": self.refits,
            "samples": self.fitted_count,
            "kernels": list(self._kernel_names),
            **calibration,
        }
        self.calibration_log.append(record)
        return record

    def _calibration_error(self):
        """Aggregate the held-back predictions into error statistics,
        then clear them (each refit reports its own window)."""
        pending, self._pending = self._pending, []
        objective_errors = []
        sched_errors = []
        cycle_errors = []
        for prediction, ok, log_objective, log_cycles in pending:
            sched_errors.append(
                (prediction.schedulable - (1.0 if ok else 0.0)) ** 2
            )
            if log_objective is not None:
                objective_errors.append(
                    abs(prediction.log_objective - log_objective)
                )
            for name, realized in log_cycles.items():
                predicted = prediction.cycles.get(name)
                if predicted is not None and predicted > 0:
                    cycle_errors.append(
                        abs(math.log(predicted) - realized)
                    )

        def mean(values):
            return sum(values) / len(values) if values else None

        return {
            "window": len(pending),
            "objective_mae": mean(objective_errors),
            "schedulable_brier": mean(sched_errors),
            "cycles_log_mae": mean(cycle_errors),
        }

    def _fit(self, samples):
        """Ridge-fit all targets on ``samples`` (deterministic: a pure
        function of the sample list)."""
        kernel_names = sorted({
            name for _, _, _, log_cycles in samples
            for name in log_cycles
        })
        n_features = len(samples[0][0])
        x = _np.ones((len(samples), n_features + 1))
        for row, (features, _, _, _) in enumerate(samples):
            x[row, 1:] = features
        scale = _np.maximum(1.0, _np.abs(x[:, 1:]).max(axis=0))
        x[:, 1:] /= scale

        ok_rows = [row for row, (_, _, log_objective, _)
                   in enumerate(samples) if log_objective is not None]
        targets = _np.zeros((len(samples), 2 + len(kernel_names)))
        for row, (_, ok, log_objective, log_cycles) in enumerate(samples):
            targets[row, 0] = 1.0 if ok else 0.0
            if log_objective is not None:
                targets[row, 1] = log_objective
            for slot, name in enumerate(kernel_names):
                targets[row, 2 + slot] = log_cycles.get(name, 0.0)

        weights = _np.zeros((n_features + 1, 2 + len(kernel_names)))
        weights[:, 0] = self._solve(x, targets[:, 0])
        if ok_rows:
            x_ok = x[ok_rows]
            for column in range(1, 2 + len(kernel_names)):
                weights[:, column] = self._solve(
                    x_ok, targets[ok_rows, column]
                )
        self._weights = weights
        self._scale = scale
        self._kernel_names = kernel_names

    @staticmethod
    def _solve(x, y):
        """Ridge normal equations; deterministic for fixed inputs."""
        gram = x.T @ x + _RIDGE_LAMBDA * _np.eye(x.shape[1])
        return _np.linalg.solve(gram, x.T @ y)

    # -- reporting -----------------------------------------------------
    def stats(self):
        """A plain-dict snapshot for run summaries."""
        return {
            "samples": len(self.buffer),
            "fitted_count": self.fitted_count,
            "refits": self.refits,
            "recalibrate_every": self.recalibrate_every,
            "trained": self.trained,
            "last_calibration": (
                dict(self.calibration_log[-1])
                if self.calibration_log else None
            ),
        }
