"""Synthetic synthesis database.

The paper builds its power/area regression from Synopsys DC synthesis of
every hardware module across sampled parameters (UMC 28 nm UHD, 1 GHz).
Without a synthesis tool, we substitute an analytical gate-count and
energy model whose *structure* follows standard VLSI scaling:

* functional-unit cost from the ISA's NAND2-kilogate table, with a
  sharing discount for multi-function units;
* dynamic scheduling adds operand-readiness logic proportional to the
  instruction window; shared PEs add instruction-buffer SRAM;
* switch cost grows with ``inputs x outputs x width`` (mux crossbar) and
  decomposition adds subword lane muxing;
* SRAM macros cost per-KB with a banking overhead;
* deterministic "measurement noise" (a few percent, keyed by the
  parameters) stands in for synthesis run-to-run variation so the fitted
  regression behaves like the paper's (4-7% validation error).

Absolute numbers are calibrated to be plausible for 28 nm (a full
Softbrain-class 4x4 fabric lands near 1 mm² / 300 mW) but only *ratios*
matter for reproducing the paper's conclusions. This substitution is
documented in DESIGN.md.
"""

import hashlib
import math

from repro.adg.components import (
    ControlCore,
    DelayFifo,
    Memory,
    MemoryKind,
    ProcessingElement,
    Resourcing,
    Scheduling,
    Switch,
    SyncElement,
)
from repro.isa.fu import select_functional_units

# Technology constants (28 nm class).
MM2_PER_KGATE = 0.00052       # logic area per NAND2-equivalent kilogate
MW_PER_KGATE = 0.030          # dynamic+leakage power per kilogate at 1 GHz
MM2_PER_KB_SRAM = 0.0042      # single-ported SRAM macro
MW_PER_KB_SRAM = 0.016
NOISE = 0.04                  # synthesis "measurement noise" amplitude


def _noise_factor(*keys):
    """Deterministic pseudo-noise in [1-NOISE, 1+NOISE] keyed by params."""
    digest = hashlib.sha256("/".join(map(str, keys)).encode()).digest()
    unit = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
    return 1.0 + NOISE * (2.0 * unit - 1.0)


def _pe_kgates(pe, in_links, out_links):
    units = select_functional_units(pe.op_names)
    fu = sum(unit.gate_cost for unit in units) * pe.width / 64.0
    if pe.decomposable_to < pe.width:
        fu *= 1.12  # lane-boundary muxing
    # Operand selection crossbar from input links into FU operands.
    crossbar = 0.02 * in_links * 3 * (pe.width / 64.0)
    # Registers (accumulators / shared-PE temporaries).
    registers = 0.09 * pe.register_file_size * (pe.width / 64.0)
    # Delay FIFOs on each input (static PEs).
    delay = 0.0
    if not pe.is_dynamic:
        delay = 0.055 * in_links * pe.delay_fifo_depth * (pe.width / 64.0)
    # Dynamic scheduling: readiness/tag-match logic per window entry and
    # credit-based flow control per link.
    dynamic = 0.0
    if pe.is_dynamic:
        window = max(1, pe.max_instructions)
        dynamic = 0.8 + 0.45 * window + 0.06 * (in_links + out_links)
    # Shared (temporal) PEs: instruction buffer + tag dispatch.
    shared = 0.0
    if pe.is_shared:
        shared = 0.35 * pe.max_instructions + 0.5
    config = 0.25  # configuration registers
    return fu + crossbar + registers + delay + dynamic + shared + config


def _switch_kgates(switch, in_links, out_links):
    base = 0.016 * max(1, in_links) * max(1, out_links) * (switch.width / 64.0)
    if switch.decomposable_to < switch.width:
        lanes = switch.width // switch.decomposable_to
        base *= 1.0 + 0.35 * math.log2(lanes)
    if switch.is_dynamic:
        base += 0.10 * (in_links + out_links)  # credit counters
    if switch.flop_output:
        base += 0.016 * out_links * (switch.width / 64.0)
    base += 0.06 * switch.routing_table_size  # routing config entries
    return base + 0.08


def _memory_cost(memory):
    """(area_mm2, power_mw) for a memory node."""
    if memory.kind.value == "dma":
        # The DMA engine models the L2 interface queue + address pipes,
        # not the cache itself.
        kgates = 6.0 + 0.7 * memory.num_stream_slots
        kgates += 0.09 * memory.width_bytes
        return kgates * MM2_PER_KGATE, kgates * MW_PER_KGATE
    kb = memory.capacity_bytes / 1024.0
    area = kb * MM2_PER_KB_SRAM
    power = kb * MW_PER_KB_SRAM
    # Banking: duplicated decoders/sense amps.
    area *= 1.0 + 0.05 * math.log2(max(1, memory.banks))
    power *= 1.0 + 0.05 * math.log2(max(1, memory.banks))
    # Stream controllers: linear always; indirect and atomic optional.
    kgates = 2.2 + 0.55 * memory.num_stream_slots
    if memory.indirect:
        kgates += 3.5 + 0.4 * memory.banks
    if memory.atomic_update:
        kgates += 0.9 * memory.banks  # per-bank update ALUs
    if memory.coalescing:
        kgates += 2.5 + 0.2 * memory.num_stream_slots  # merge CAM + buffer
    return (
        area + kgates * MM2_PER_KGATE,
        power + kgates * MW_PER_KGATE,
    )


def _sync_kgates(port):
    words = port.depth * max(1, port.width // 64)
    return 0.30 + 0.055 * words + 0.04 * port.lanes64


def _delay_kgates(fifo):
    return 0.12 + 0.05 * fifo.depth * (fifo.width / 64.0)


def _core_cost(core):
    if not core.programmable:
        # Fixed FSM replaying a baked-in command sequence.
        kgates = 3.5 + 0.3 * core.command_queue_depth
        return kgates * MM2_PER_KGATE, kgates * MW_PER_KGATE
    # In-order RISC-V-class control core + command queue.
    kgates = 42.0 + 4.0 * core.issue_width + 0.5 * core.command_queue_depth
    return kgates * MM2_PER_KGATE * 1.6, kgates * MW_PER_KGATE * 1.4


def synthesize_component(component, in_links=2, out_links=2, noisy=True):
    """'Synthesize' one component: returns ``(area_mm2, power_mw)``.

    ``in_links``/``out_links`` are the component's ADG degree — switch and
    PE cost depends on radix.
    """
    if isinstance(component, ProcessingElement):
        kgates = _pe_kgates(component, in_links, out_links)
        area, power = kgates * MM2_PER_KGATE, kgates * MW_PER_KGATE
    elif isinstance(component, Switch):
        kgates = _switch_kgates(component, in_links, out_links)
        area, power = kgates * MM2_PER_KGATE, kgates * MW_PER_KGATE
    elif isinstance(component, Memory):
        area, power = _memory_cost(component)
    elif isinstance(component, SyncElement):
        kgates = _sync_kgates(component)
        area, power = kgates * MM2_PER_KGATE, kgates * MW_PER_KGATE
    elif isinstance(component, DelayFifo):
        kgates = _delay_kgates(component)
        area, power = kgates * MM2_PER_KGATE, kgates * MW_PER_KGATE
    elif isinstance(component, ControlCore):
        area, power = _core_cost(component)
    else:
        raise TypeError(f"cannot synthesize {type(component).__name__}")
    if noisy:
        factor = _noise_factor(
            type(component).__name__, component.width, in_links, out_links,
            getattr(component, "depth", 0),
            getattr(component, "max_instructions", 0),
        )
        area *= factor
        power *= factor
    return area, power


def generate_dataset(rng=None, samples_per_type=160):
    """Sample the component parameter space and synthesize each point.

    Returns ``{component_type_name: [(features, area, power), ...]}`` —
    the training set for :mod:`repro.estimation.regression`. Feature
    extraction lives there; this module only produces raw components.
    """
    from repro.estimation.regression import component_features
    from repro.utils.rng import DeterministicRng

    rng = rng or DeterministicRng("synth-db")
    dataset = {}

    def record(component, in_links, out_links):
        area, power = synthesize_component(component, in_links, out_links)
        features = component_features(component, in_links, out_links)
        dataset.setdefault(type(component).__name__, []).append(
            (features, area, power)
        )

    widths = [16, 32, 64, 128]
    op_pools = [
        {"add", "sub", "cmp_lt", "select", "copy"},
        {"add", "sub", "mul", "cmp_lt", "select", "copy"},
        {"fadd", "fmul", "select", "copy"},
        {"add", "mul", "fadd", "fmul", "fdiv", "select", "copy", "sjoin"},
    ]
    for _ in range(samples_per_type):
        width = rng.choice(widths)
        shared = rng.accept(0.4)
        pe = ProcessingElement(
            name="s",
            width=width,
            scheduling=rng.choice(list(Scheduling)),
            resourcing=Resourcing.SHARED if shared else Resourcing.DEDICATED,
            op_names=set(rng.choice(op_pools)),
            max_instructions=rng.choice([2, 4, 8, 16]) if shared else 1,
            decomposable_to=rng.choice([width, width, max(8, width // 4)]),
            delay_fifo_depth=rng.choice([2, 4, 8, 16]),
            register_file_size=rng.choice([2, 4, 8]),
        )
        record(pe, rng.randint(1, 6), rng.randint(1, 6))

        switch = Switch(
            name="s",
            width=width,
            decomposable_to=rng.choice([width, max(8, width // 8)]),
            flop_output=rng.accept(0.8),
            routing_table_size=rng.choice([1, 2, 4]),
        )
        record(switch, rng.randint(1, 8), rng.randint(1, 8))

        port = SyncElement(
            name="s", width=rng.choice([64, 128, 256, 512]),
            depth=rng.choice([2, 4, 8, 16, 32]),
        )
        record(port, 1, 1)

        fifo = DelayFifo(name="s", width=width,
                         depth=rng.choice([2, 4, 8, 16]))
        record(fifo, 1, 1)

        memory = Memory(
            name="s",
            width=512,
            capacity_bytes=rng.choice([8, 16, 32, 64, 128]) * 1024,
            width_bytes=rng.choice([16, 32, 64]),
            num_stream_slots=rng.choice([2, 4, 8, 16]),
            banks=rng.choice([1, 2, 4, 8, 16]),
            indirect=rng.accept(0.5),
            coalescing=rng.accept(0.3),
        )
        if memory.indirect:
            memory.atomic_update = rng.accept(0.5)
        record(memory, 1, 1)

        dma = Memory(
            name="s",
            width=512,
            kind=MemoryKind.DMA,
            capacity_bytes=1 << 30,
            width_bytes=rng.choice([16, 32, 64]),
            num_stream_slots=rng.choice([2, 4, 8, 16]),
        )
        record(dma, 1, 1)

        core = ControlCore(
            name="s",
            issue_width=rng.choice([1, 2]),
            command_queue_depth=rng.choice([4, 8, 16]),
            programmable=rng.accept(0.7),
        )
        record(core, 1, 1)
    return dataset
