"""Whole-ADG power/area estimation and 'synthesis'.

:class:`AreaPowerModel` applies the per-component regression of
Section V-C to every node of an ADG — this is what the DSE loop calls
thousands of times. :func:`synthesize_adg` is the expensive "ground
truth": per-component synthesis plus the fabric-level integration
overhead (clock tree, top-level wiring, timing-closure buffers) that the
paper identifies as the reason estimates come out 4-7% *below* synthesis
(Figure 15 discussion).
"""

from repro.estimation.regression import (
    component_features,
    fit_regression,
)
from repro.estimation.synth_db import generate_dataset, synthesize_component

#: Fabric-integration overhead applied by full synthesis but invisible to
#: the per-component regression (Section VIII-B: "extra structures are
#: required to meet timing for the whole fabric").
FABRIC_OVERHEAD = 1.055


class AreaPowerModel:
    """Regression-backed area/power estimator for whole ADGs."""

    def __init__(self, models=None):
        if models is None:
            models = fit_regression(generate_dataset())
        self._models = models

    def component_estimate(self, adg, component):
        """(area, power) estimate for one node of ``adg``."""
        in_links = len(adg.in_links(component.name))
        out_links = len(adg.out_links(component.name))
        model = self._models.get(type(component).__name__)
        if model is None:
            # Fall back to direct synthesis for unmodeled types.
            return synthesize_component(
                component, in_links, out_links, noisy=False
            )
        return model.predict(
            component_features(component, in_links, out_links)
        )

    def estimate(self, adg):
        """Estimated ``(area_mm2, power_mw)`` of the whole design."""
        area = 0.0
        power = 0.0
        for component in adg.nodes():
            a, p = self.component_estimate(adg, component)
            area += a
            power += p
        return area, power

    def breakdown(self, adg):
        """Per-component-kind area/power shares (for reports)."""
        by_kind = {}
        for component in adg.nodes():
            a, p = self.component_estimate(adg, component)
            kind = component.KIND
            area, power = by_kind.get(kind, (0.0, 0.0))
            by_kind[kind] = (area + a, power + p)
        return by_kind


_DEFAULT_MODEL = None


def default_model():
    """The lazily fitted singleton model (dataset generation and fitting
    take a moment; DSE reuses one instance)."""
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is None:
        _DEFAULT_MODEL = AreaPowerModel()
    return _DEFAULT_MODEL


def estimate_area_power(adg, model=None):
    """Convenience wrapper: regression estimate for ``adg``."""
    return (model or default_model()).estimate(adg)


def synthesize_adg(adg):
    """'Synthesize' the whole design: the validation ground truth.

    Per-component synthesis (with measurement noise) plus the fabric
    integration overhead. Returns ``(area_mm2, power_mw)``.
    """
    area = 0.0
    power = 0.0
    for component in adg.nodes():
        a, p = synthesize_component(
            component,
            len(adg.in_links(component.name)),
            len(adg.out_links(component.name)),
        )
        area += a
        power += p
    return area * FABRIC_OVERHEAD, power * FABRIC_OVERHEAD
