"""Performance and power/area estimation.

* :mod:`repro.estimation.perf_model` — the analytical performance model
  of Section V-B (IPC = #insts x activity ratio, limited by memory
  bandwidth and dependence latency).
* :mod:`repro.estimation.synth_db` — a synthetic stand-in for the paper's
  Synopsys DC @ 28 nm component synthesis runs: an analytical gate/energy
  cost model with deterministic measurement noise.
* :mod:`repro.estimation.regression` — least-squares regression fitted on
  the synthesis dataset (Section V-C), one model per component type.
* :mod:`repro.estimation.power_area` — apply the regression to whole
  ADGs; "synthesize" whole fabrics for model validation (Figure 15).
* :mod:`repro.estimation.surrogate` — the online learned cost model
  (ridge over ADG graph features) that ranks wide DSE generations so
  full compilation is reserved for the finalists.
"""

from repro.estimation.perf_model import PerfEstimate, PerformanceModel
from repro.estimation.surrogate import SurrogateModel, SurrogatePrediction
from repro.estimation.power_area import (
    AreaPowerModel,
    default_model,
    estimate_area_power,
    synthesize_adg,
)
from repro.estimation.synth_db import generate_dataset, synthesize_component

__all__ = [
    "PerformanceModel",
    "PerfEstimate",
    "AreaPowerModel",
    "default_model",
    "estimate_area_power",
    "synthesize_adg",
    "generate_dataset",
    "synthesize_component",
    "SurrogateModel",
    "SurrogatePrediction",
]
