"""Tests for the DOT/text printers and the command-line interface."""

import json

import pytest

from repro.adg import topologies
from repro.cli import main
from repro.compiler.kernel import VariantParams
from repro.ir.printer import (
    adg_to_dot,
    describe_region,
    describe_scope,
    dfg_to_dot,
)
from repro.workloads import kernel as make_kernel


class TestPrinter:
    def test_dfg_dot_structure(self):
        scope = make_kernel("mm", 0.05).build(VariantParams(unroll=2))
        dot = dfg_to_dot(scope.regions[0].dfg)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "fmul" in dot
        assert "->" in dot

    def test_dfg_dot_marks_reductions_and_lanes(self):
        scope = make_kernel("classifier", 0.05).build(
            VariantParams(unroll=2)
        )
        dot = dfg_to_dot(scope.regions[0].dfg)
        assert "[acc/" in dot
        assert "l1" in dot  # lane-1 tap annotated

    def test_adg_dot_covers_all_nodes(self):
        adg = topologies.cca()
        dot = adg_to_dot(adg)
        for name in adg.node_names():
            assert name in dot

    def test_describe_region_streams(self):
        scope = make_kernel("histogram", 0.05).build(
            VariantParams(use_indirect=True, use_atomic=True)
        )
        text = describe_region(scope.regions[0])
        assert "update H[" in text
        assert "compute:" in text

    def test_describe_scope_includes_forwards(self):
        scope = make_kernel("classifier", 0.05).build(VariantParams())
        text = describe_scope(scope)
        assert "forward" in text
        assert "region" in text

    def test_describe_join_region(self):
        scope = make_kernel("join", 0.05).build(
            VariantParams(use_join=False)
        )
        text = describe_region(scope.regions[0])
        assert "serialized join" in text


class TestCli:
    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "mm" in out and "histogram" in out

    def test_run_workload(self, capsys):
        code = main([
            "run", "pool", "--target", "softbrain",
            "--scale", "0.05", "--sched-iters", "80",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "simulated cycles" in out
        assert "correct: True" in out

    def test_unknown_target_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "pool", "--target", "warp9"])

    def test_compile_c_file(self, tmp_path, capsys):
        source = tmp_path / "kernel.c"
        source.write_text("""
        void triple(double *x, double *y, int n) {
          #pragma dsa config
          {
            #pragma dsa offload
            for (int i = 0; i < n; ++i) { y[i] = 3.0 * x[i]; }
          }
        }
        """)
        dot_path = tmp_path / "out.dot"
        code = main([
            "compile", str(source),
            "--bind", "n=16", "--array", "x=16", "--array", "y=16",
            "--sched-iters", "80", "--dot", str(dot_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "region triple_r0" in out
        assert "correct: True" in out
        assert dot_path.read_text().startswith("digraph")

    def test_hwgen_roundtrip(self, tmp_path, capsys):
        json_path = tmp_path / "design.json"
        verilog_path = tmp_path / "design.v"
        code = main([
            "hwgen", "cca",
            "--verilog", str(verilog_path),
            "--json-out", str(json_path),
        ])
        assert code == 0
        assert "configuration paths" in capsys.readouterr().out
        assert "module" in verilog_path.read_text()
        payload = json.loads(json_path.read_text())
        assert payload["name"] == "cca"
        # The written design is loadable as a target.
        code = main([
            "run", "pool", "--target", str(json_path),
            "--scale", "0.05", "--sched-iters", "80", "--no-simulate",
        ])
        # pool may or may not map on CCA; both outcomes are valid CLI
        # behaviour (0 or 1), but it must not crash.
        assert code in (0, 1)

    def test_report_table1(self, capsys):
        assert main(["report", "table1"]) == 0
        assert "workload" in capsys.readouterr().out

    def test_report_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["report", "fig99"])
