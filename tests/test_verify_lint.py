"""Tests for the schedule legality linter (repro.verify.lint)."""

import pytest

from repro.adg import topologies
from repro.scheduler import Schedule, SpatialScheduler
from repro.verify import lint_schedule

from tests.test_scheduler import dot_scope


@pytest.fixture(scope="module")
def mapped():
    """A legal, complete mapping of the dot-product scope."""
    adg = topologies.softbrain()
    scheduler = SpatialScheduler(adg, max_iters=200)
    schedule, cost = scheduler.schedule(dot_scope(n=8, unroll=2))
    assert cost.is_legal
    return adg, schedule


def _clone(mapped):
    return mapped[0], mapped[1].clone()


def test_legal_schedule_lints_clean(mapped):
    adg, schedule = mapped
    report = lint_schedule(schedule, adg)
    assert report.ok, report.describe()
    assert len(report) == 0


def test_empty_schedule_completeness(mapped):
    adg, schedule = mapped
    empty = Schedule(schedule.scope, adg)
    strict = lint_schedule(empty, adg)
    assert not strict.ok
    assert strict.select("completeness.unplaced")
    assert strict.select("completeness.unrouted")
    # Search states are legally incomplete: partial mode downgrades.
    partial = lint_schedule(empty, adg, allow_partial=True)
    assert partial.ok
    assert partial.warnings


def test_instruction_on_switch_is_kind_error(mapped):
    adg, schedule = _clone(mapped)
    vertex = next(
        v for v in schedule.vertices()
        if schedule.node_of(v).kind.value == "instr"
    )
    schedule.placement[vertex] = adg.switches()[0].name
    report = lint_schedule(schedule, adg)
    assert "placement.kind" in report.codes()


def test_placement_on_unknown_node(mapped):
    adg, schedule = _clone(mapped)
    vertex = schedule.vertices()[0]
    schedule.placement[vertex] = "no_such_component"
    report = lint_schedule(schedule, adg)
    assert "placement.unknown-node" in report.codes()


def test_port_on_wrong_direction(mapped):
    adg, schedule = _clone(mapped)
    vertex = next(
        v for v in schedule.vertices()
        if schedule.node_of(v).kind.value == "input"
    )
    schedule.placement[vertex] = adg.output_ports()[0].name
    report = lint_schedule(schedule, adg)
    assert "placement.capability" in report.codes()


def test_truncated_route_is_sink_mismatch(mapped):
    adg, schedule = _clone(mapped)
    edge = next(e for e, ls in schedule.routes.items() if len(ls) >= 2)
    schedule.routes[edge] = schedule.routes[edge][:-1]
    report = lint_schedule(schedule, adg)
    assert "route.sink-mismatch" in report.codes()


def test_gap_in_route_is_disconnected(mapped):
    adg, schedule = _clone(mapped)
    edge = next(e for e, ls in schedule.routes.items() if len(ls) >= 3)
    links = schedule.routes[edge]
    schedule.routes[edge] = [links[0]] + links[2:]
    report = lint_schedule(schedule, adg)
    codes = report.codes()
    assert "route.disconnected" in codes or "route.sink-mismatch" in codes


def test_unknown_link_in_route(mapped):
    adg, schedule = _clone(mapped)
    edge = next(e for e, ls in schedule.routes.items() if ls)
    schedule.routes[edge] = [999999]
    report = lint_schedule(schedule, adg)
    assert "route.unknown-link" in report.codes()


def test_oversubscribed_link(mapped):
    adg, schedule = _clone(mapped)
    routed = [e for e, ls in schedule.routes.items() if ls]
    first = routed[0]
    second = next(e for e in routed[1:] if e.value != first.value)
    # Splice first's link into second's route to create 2 values on it.
    schedule.routes[second] = (
        [schedule.routes[first][0]] + schedule.routes[second]
    )
    strict = lint_schedule(schedule, adg)
    assert "route.oversubscribed" in strict.codes()
    partial = lint_schedule(schedule, adg, allow_partial=True)
    oversub = partial.select("route.oversubscribed")
    assert oversub and all(d.severity == "warning" for d in oversub)


def test_delay_bounds(mapped):
    adg, schedule = _clone(mapped)
    edge = next(
        e for e in schedule.edges()
        if schedule.placement.get(e.dst)
        and schedule.placement[e.dst].startswith("pe")
    )
    pe = adg.node(schedule.placement[edge.dst])
    schedule.input_delays[edge] = pe.delay_fifo_depth + 5
    report = lint_schedule(schedule, adg)
    assert "delay.depth" in report.codes()
    schedule.input_delays[edge] = -1
    report = lint_schedule(schedule, adg)
    assert "delay.negative" in report.codes()


def test_stream_binding_faults(mapped):
    adg, schedule = _clone(mapped)
    (region, port) = next(iter(schedule.stream_binding))
    schedule.stream_binding[(region, port)] = "nonexistent_memory"
    report = lint_schedule(schedule, adg)
    assert "stream.unknown-memory" in report.codes()
    schedule.stream_binding[(region, port)] = adg.pes()[0].name
    report = lint_schedule(schedule, adg)
    assert "stream.not-a-memory" in report.codes()


def test_unbound_memory_stream(mapped):
    adg, schedule = _clone(mapped)
    key = next(iter(schedule.stream_binding))
    del schedule.stream_binding[key]
    strict = lint_schedule(schedule, adg)
    assert "stream.unbound" in strict.codes()
    partial = lint_schedule(schedule, adg, allow_partial=True)
    unbound = partial.select("stream.unbound")
    assert unbound and all(d.severity == "warning" for d in unbound)


def test_counter_drift_is_error_even_in_partial_mode(mapped):
    adg, schedule = _clone(mapped)
    key = next(iter(schedule._pe_load))
    schedule._pe_load[key] += 1
    for allow_partial in (False, True):
        report = lint_schedule(schedule, adg, allow_partial=allow_partial)
        assert "state.pe-load-drift" in report.codes()
        assert not report.ok


def test_route_length_drift(mapped):
    adg, schedule = _clone(mapped)
    schedule._route_length += 7
    report = lint_schedule(schedule, adg)
    assert "state.route-length-drift" in report.codes()


def test_check_state_false_skips_drift(mapped):
    adg, schedule = _clone(mapped)
    schedule._route_length += 7
    report = lint_schedule(schedule, adg, check_state=False)
    assert "state.route-length-drift" not in report.codes()


def test_delay_fifo_bound_respected_by_scheduler(mapped):
    """The real scheduler never assigns more delay than the FIFOs hold."""
    adg, schedule = mapped
    report = lint_schedule(schedule, adg)
    assert not report.select("delay.")


def test_diagnostic_roundtrip(mapped):
    adg, schedule = _clone(mapped)
    schedule.routes[next(iter(schedule.routes))] = [999999]
    report = lint_schedule(schedule, adg)
    from repro.verify.diagnostics import Diagnostic

    for diagnostic in report:
        clone = Diagnostic.from_dict(diagnostic.to_dict())
        assert clone.code == diagnostic.code
        assert clone.severity == diagnostic.severity
        assert clone.category == diagnostic.code.split(".")[0]
