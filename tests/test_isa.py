"""Tests for the instruction set and functional-unit model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import (
    FU_LIBRARY,
    OPCODES,
    OpCategory,
    fu_for_opcode,
    opcode,
    opcodes_in_category,
    select_functional_units,
)
from repro.isa.fu import categories_of, is_control_only
from repro.isa.opcodes import evaluate


class TestOpcodeRegistry:
    def test_core_opcodes_present(self):
        for name in ("add", "sub", "mul", "fadd", "fmul", "select", "sjoin",
                     "acc", "mac", "fdiv", "sigmoid"):
            assert name in OPCODES

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            opcode("no_such_op")

    def test_arity_matches_semantics(self):
        assert opcode("abs").arity == 1
        assert opcode("add").arity == 2
        assert opcode("select").arity == 3
        assert opcode("mac").arity == 3

    def test_divides_are_unpipelined(self):
        for name in ("div", "mod", "fdiv", "fsqrt"):
            assert not opcode(name).pipelined
            assert opcode(name).latency > 4

    def test_category_listing_sorted(self):
        arith = opcodes_in_category(OpCategory.ARITH)
        names = [op.name for op in arith]
        assert names == sorted(names)
        assert "add" in names and "fadd" not in names

    def test_every_opcode_has_semantics(self):
        """evaluate() must cover the full registry (simulator requirement)."""
        samples = {1: [3], 2: [3, 2], 3: [1, 3, 2]}
        for op in OPCODES.values():
            operands = samples[op.arity]
            if op.is_floating:
                operands = [float(v) for v in operands]
            result = evaluate(op, operands)
            assert result is not None


class TestEvaluate:
    def test_integer_arithmetic(self):
        assert evaluate("add", [2, 3]) == 5
        assert evaluate("sub", [2, 3]) == -1
        assert evaluate("mul", [4, 5]) == 20
        assert evaluate("mac", [4, 5, 1]) == 21

    def test_division_by_zero_yields_zero(self):
        assert evaluate("div", [5, 0]) == 0
        assert evaluate("mod", [5, 0]) == 0

    def test_division_truncates_toward_zero(self):
        assert evaluate("div", [-7, 2]) == -3
        assert evaluate("mod", [-7, 2]) == -1

    def test_wraparound_at_width(self):
        assert evaluate("add", [(1 << 63) - 1, 1]) == -(1 << 63)
        assert evaluate("add", [127, 1], bits=8) == -128

    def test_select(self):
        assert evaluate("select", [1, 10, 20]) == 10
        assert evaluate("select", [0, 10, 20]) == 20

    def test_comparisons_produce_bits(self):
        assert evaluate("cmp_lt", [1, 2]) == 1
        assert evaluate("cmp_ge", [1, 2]) == 0

    def test_float_ops(self):
        assert evaluate("fadd", [1.5, 2.5]) == 4.0
        assert evaluate("fsqrt", [9.0]) == 3.0
        assert math.isnan(evaluate("fsqrt", [-1.0]))
        assert evaluate("fdiv", [1.0, 0.0]) == math.inf

    def test_sigmoid_saturates(self):
        assert evaluate("sigmoid", [1000.0]) == pytest.approx(1.0)
        assert evaluate("sigmoid", [-1000.0]) == pytest.approx(0.0, abs=1e-9)

    def test_unknown_opcode_raises(self):
        with pytest.raises(KeyError):
            evaluate("bogus", [1, 2])

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_commutative_ops_commute(self, a, b):
        for name in ("add", "mul", "min", "max", "and", "or", "xor"):
            assert evaluate(name, [a, b]) == evaluate(name, [b, a])


class TestFunctionalUnits:
    def test_library_nonempty_and_consistent(self):
        assert len(FU_LIBRARY) >= 8
        for unit in FU_LIBRARY.values():
            assert unit.gate_cost > 0
            assert unit.decomposable_to <= unit.width
            for op_name in unit.opcodes:
                assert op_name in OPCODES

    def test_fu_for_opcode_prefers_cheapest(self):
        assert fu_for_opcode("add").name == "alu"
        assert fu_for_opcode("fmul").name == "fpmul"

    def test_fu_for_unknown_raises(self):
        with pytest.raises(KeyError):
            fu_for_opcode("bogus")

    def test_selection_covers_requested_ops(self):
        requested = {"add", "mul", "fadd", "fmul", "sjoin", "sigmoid"}
        units = select_functional_units(requested)
        covered = set()
        for unit in units:
            covered |= unit.opcodes
        assert requested <= covered

    def test_selection_minimal_for_alu_subset(self):
        units = select_functional_units({"add", "sub", "cmp_lt", "select"})
        assert [u.name for u in units] == ["alu"]

    def test_selection_rejects_unknown(self):
        with pytest.raises(KeyError):
            select_functional_units({"add", "bogus"})

    def test_decomposable_support(self):
        alu = FU_LIBRARY["alu"]
        assert alu.supports("add", 32)
        assert alu.supports("add", 8)
        assert not alu.supports("add", 128)
        shifter = FU_LIBRARY["shifter"]
        assert not shifter.supports("shl", 32)  # not decomposable

    def test_lanes(self):
        alu = FU_LIBRARY["alu"]
        assert alu.lanes(64) == 1
        assert alu.lanes(16) == 4
        assert alu.lanes(128) == 0

    def test_sharing_cheaper_than_sum(self):
        alu = FU_LIBRARY["alu"]
        dedicated_sum = sum(OPCODES[op].gate_cost for op in alu.opcodes)
        assert alu.gate_cost < dedicated_sum

    @given(st.sets(st.sampled_from(sorted(OPCODES)), min_size=1, max_size=8))
    def test_selection_always_covers(self, ops):
        units = select_functional_units(ops)
        for op_name in ops:
            assert any(op_name in unit.opcodes for unit in units)

    def test_categories_of(self):
        cats = categories_of({"add", "fmul"})
        assert cats == {OpCategory.ARITH, OpCategory.FP_MULTIPLY}

    def test_is_control_only(self):
        assert is_control_only({"select", "copy"})
        assert not is_control_only({"select", "add"})
        assert not is_control_only(set())
