"""Tests for repro.utils: bit math, deterministic RNG, id allocation."""

import multiprocessing

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import (
    DeterministicRng,
    IdAllocator,
    bits_for_value,
    ceil_div,
    ceil_log2,
    is_power_of_two,
    next_power_of_two,
)


class TestBits:
    def test_powers_of_two_detected(self):
        for exponent in range(12):
            assert is_power_of_two(1 << exponent)

    def test_non_powers_rejected(self):
        for value in (0, -1, 3, 5, 6, 7, 9, 12, 100):
            assert not is_power_of_two(value)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(3) == 4
        assert next_power_of_two(64) == 64
        assert next_power_of_two(65) == 128

    def test_next_power_of_two_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)

    def test_ceil_log2(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(5) == 3
        assert ceil_log2(1024) == 10

    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(0, 5) == 0

    def test_ceil_div_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_bits_for_value(self):
        assert bits_for_value(0) == 1
        assert bits_for_value(1) == 1
        assert bits_for_value(255) == 8
        assert bits_for_value(256) == 9

    @given(st.integers(min_value=1, max_value=1 << 20))
    def test_next_power_is_power_and_bounds(self, value):
        power = next_power_of_two(value)
        assert is_power_of_two(power)
        assert power >= value
        assert power < 2 * value

    @given(st.integers(min_value=1, max_value=1 << 20),
           st.integers(min_value=1, max_value=1 << 10))
    def test_ceil_div_matches_float_ceiling(self, numerator, denominator):
        import math

        assert ceil_div(numerator, denominator) == math.ceil(
            numerator / denominator
        )


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_fork_is_independent(self):
        base = DeterministicRng(7)
        fork1 = base.fork("x")
        fork2 = base.fork("x")
        assert [fork1.random() for _ in range(5)] == [
            fork2.random() for _ in range(5)
        ]
        assert base.fork("x").random() != base.fork("y").random()

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            DeterministicRng().choice([])

    def test_weighted_choice_respects_zero_weight(self):
        rng = DeterministicRng(3)
        picks = {
            rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)
        }
        assert picks == {"a"}

    def test_weighted_choice_validates(self):
        rng = DeterministicRng()
        with pytest.raises(ValueError):
            rng.weighted_choice(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            rng.weighted_choice(["a", "b"], [0.0, 0.0])

    def test_weighted_choice_distribution(self):
        rng = DeterministicRng(11)
        counts = {"a": 0, "b": 0}
        for _ in range(2000):
            counts[rng.weighted_choice(["a", "b"], [3.0, 1.0])] += 1
        assert counts["a"] > counts["b"] * 2

    def test_shuffle_preserves_elements(self):
        rng = DeterministicRng(5)
        items = list(range(30))
        shuffled = rng.shuffle(list(items))
        assert sorted(shuffled) == items

    def test_accept_extremes(self):
        rng = DeterministicRng(1)
        assert all(rng.accept(1.0) for _ in range(10))
        assert not any(rng.accept(0.0) for _ in range(10))


def _spawned_draws(payload):
    """Module-level pool target: draws from a spawned child stream."""
    seed, key = payload
    child = DeterministicRng(seed).spawn(*key)
    return [child.randint(0, 1 << 30) for _ in range(8)]


class TestSpawn:
    def test_same_key_same_stream(self):
        a = DeterministicRng(42).spawn(3, 1)
        b = DeterministicRng(42).spawn(3, 1)
        assert [a.random() for _ in range(8)] == [
            b.random() for _ in range(8)
        ]

    def test_spawn_does_not_consume_parent_state(self):
        parent = DeterministicRng(7)
        before = [parent.spawn("k", 0).random() for _ in range(3)]
        parent.randint(0, 10**9)  # advance the parent stream
        after = [parent.spawn("k", 0).random() for _ in range(3)]
        assert before == after

    def test_sibling_streams_are_independent(self):
        parent = DeterministicRng(5)
        first = parent.spawn(1, 0)
        second = parent.spawn(1, 1)
        draws_first = [first.randint(0, 1 << 30) for _ in range(8)]
        # Draining one sibling must not perturb the other.
        replay = parent.spawn(1, 0)
        assert [replay.randint(0, 1 << 30) for _ in range(8)] == (
            draws_first
        )
        assert draws_first != [
            second.randint(0, 1 << 30) for _ in range(8)
        ]

    def test_distinct_keys_distinct_streams(self):
        parent = DeterministicRng(0)
        streams = {
            tuple(parent.spawn("gen", i, j).randint(0, 1 << 30)
                  for _ in range(4))
            for i in range(4) for j in range(4)
        }
        assert len(streams) == 16

    def test_spawn_differs_from_fork(self):
        parent = DeterministicRng(9)
        assert parent.spawn("x").random() != parent.fork("x").random()

    def test_spawn_requires_key(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).spawn()

    def test_spawn_rejects_unhashable_key_types(self):
        with pytest.raises(TypeError):
            DeterministicRng(0).spawn([1, 2])

    def test_key_types_are_distinguished(self):
        parent = DeterministicRng(0)
        assert parent.spawn(1).random() != parent.spawn("1").random()

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="needs fork start method",
    )
    def test_child_streams_reproduce_across_processes(self):
        payloads = [(13, (2, idx)) for idx in range(3)]
        local = [_spawned_draws(p) for p in payloads]
        with multiprocessing.get_context("fork").Pool(2) as pool:
            remote = pool.map(_spawned_draws, payloads)
        assert remote == local


class TestIdAllocator:
    def test_sequential_allocation(self):
        ids = IdAllocator()
        assert ids.allocate("pe") == "pe0"
        assert ids.allocate("pe") == "pe1"
        assert ids.allocate("sw") == "sw0"

    def test_reserve_bumps_counter(self):
        ids = IdAllocator()
        ids.reserve("pe7")
        assert ids.allocate("pe") == "pe8"

    def test_reserve_nonconforming_name_is_noop(self):
        ids = IdAllocator()
        ids.reserve("weird-name")
        assert ids.allocate("weird") == "weird0"

    def test_peek_does_not_consume(self):
        ids = IdAllocator()
        assert ids.peek("pe") == 0
        ids.allocate("pe")
        assert ids.peek("pe") == 1
