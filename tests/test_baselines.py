"""Tests for the evaluation baselines."""

import copy


from repro.adg import topologies
from repro.baselines import (
    cpu_cycles,
    fixed_function_cost,
    manual_compile,
    manual_params_for,
)
from repro.compiler import compile_kernel
from repro.compiler.codegen import CommandKind
from repro.estimation import estimate_area_power
from repro.sim import simulate
from repro.utils.rng import DeterministicRng
from repro.workloads import kernel as make_kernel


class TestManual:
    def test_params_table(self):
        assert manual_params_for("join", "spu").use_join
        assert not manual_params_for("join", "softbrain").use_join
        assert manual_params_for("histogram", "spu").use_atomic
        # Unknown kernels default to the fallback.
        assert manual_params_for("mystery", "spu").unroll == 1

    def test_manual_compile_produces_fast_commands(self):
        adg = topologies.softbrain()
        manual = manual_compile("pool", adg, scale=0.05, sched_iters=150,
                                seeds=(0,))
        stream_commands = [
            c for c in manual.program
            if c.kind is CommandKind.ISSUE_STREAM
        ]
        assert stream_commands
        assert all(c.issue_cycles == 2 for c in stream_commands)

    def test_manual_matches_reference(self):
        adg = topologies.softbrain()
        manual = manual_compile("ellpack", adg, scale=0.05,
                                sched_iters=150, seeds=(0,))
        memory = manual.workload.make_memory()
        reference = copy.deepcopy(memory)
        simulate(adg, manual, memory)
        manual.workload.reference(reference)
        assert memory["Y"] == reference["Y"]

    def test_manual_fft_coalesces(self):
        adg = topologies.softbrain()
        manual = manual_compile("fft", adg, scale=0.05, sched_iters=150,
                                seeds=(0,))
        from repro.ir.region import as_stream_list

        region = manual.scope.regions[0]
        streams = [
            s for binding in region.input_streams.values()
            for s in as_stream_list(binding)
        ]
        assert any(getattr(s, "coalesced", False) for s in streams)

    def test_manual_not_much_slower_than_compiled(self):
        """Figure 10's premise: the hand version is a competitive
        baseline (allowing small inversions on scaled problems)."""
        adg = topologies.softbrain()
        name = "ellpack"
        workload = make_kernel(name, 0.05)
        compiled = compile_kernel(
            workload, adg, rng=DeterministicRng(0), max_iters=150
        )
        manual = manual_compile(name, adg, scale=0.05, sched_iters=300)
        mem_c = workload.make_memory()
        mem_m = manual.workload.make_memory()
        cycles_compiled = simulate(adg, compiled, mem_c).cycles
        cycles_manual = simulate(adg, manual, mem_m).cycles
        assert cycles_manual <= cycles_compiled * 1.3

    def test_manual_degrades_hand_params_on_weak_hardware(self):
        # join's hand-tuned SPU params use the stream-join transform;
        # on Softbrain the manual implementer falls back.
        adg = topologies.softbrain()
        manual = manual_compile("join", adg, accel_name="spu",
                                scale=0.05, sched_iters=100, seeds=(0,))
        assert not manual.params.use_join


class TestCpuModel:
    def test_streaming_kernel_bandwidth_bound(self):
        workload = make_kernel("mm", 0.1)
        cycles = cpu_cycles(workload)
        assert cycles > 100

    def test_bigger_problem_costs_more(self):
        small = cpu_cycles(make_kernel("mm", 0.1))    # n=8 after floors
        large = cpu_cycles(make_kernel("mm", 0.25))   # n=16
        assert large > small

    def test_irregular_penalty_applies(self):
        join_cycles = cpu_cycles(make_kernel("join", 0.05))
        assert join_cycles > 0


class TestFixedFunction:
    def test_cheaper_than_reconfigurable(self):
        for preset in ("diannao", "spu", "softbrain"):
            adg = topologies.PRESETS[preset]()
            fixed_area, fixed_power = fixed_function_cost(adg)
            est_area, est_power = estimate_area_power(adg)
            assert fixed_area < est_area, preset
            assert fixed_power < est_power, preset

    def test_memories_still_counted(self):
        adg = topologies.diannao_like()
        area, _ = fixed_function_cost(adg)
        spad = adg.scratchpad()
        from repro.estimation.synth_db import synthesize_component

        memory_area, _ = synthesize_component(spad, noisy=False)
        assert area > memory_area  # datapath adds on top of SRAM
