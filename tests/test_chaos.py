"""Chaos-harness tests: decision purity, the fault-injecting transport
against a live journaled server, the nonce-idempotency regression for
the unsafe-retry bug, the connection-level proxy, and a miniature
end-to-end campaign with a real ``kill -9``."""

import collections
import os

import pytest

from repro.server import BackgroundServer, JobSpec, ServerClient
from repro.server.chaos import (
    CHAOS_KINDS,
    BackgroundProxy,
    ChaosSpec,
    ChaosTransport,
    build_requests,
    chaos_decision,
    chaos_delay,
    kill_indices,
    run_chaos,
)
from repro.server.client import CircuitBreaker, RetryPolicy
from repro.server.journal import verify_journal
from repro.server.server import JOURNAL_BASENAME


def _client(address, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(retries=10,
                                           backoff_base=0.01,
                                           backoff_cap=0.05,
                                           jitter_seed=0))
    kwargs.setdefault("breaker",
                      CircuitBreaker(threshold=50, reset_after=0.1))
    return ServerClient(*address, **kwargs)


class TestDecisions:
    def test_decision_is_pure_and_seed_sensitive(self):
        first = [chaos_decision(7, i, 0.3) for i in range(200)]
        again = [chaos_decision(7, i, 0.3) for i in range(200)]
        other = [chaos_decision(8, i, 0.3) for i in range(200)]
        assert first == again
        assert first != other

    def test_fault_rate_and_kind_spread(self):
        draws = [chaos_decision(2026, i, 0.30) for i in range(4000)]
        hits = [d for d in draws if d is not None]
        assert 0.25 < len(hits) / len(draws) < 0.35
        counts = collections.Counter(hits)
        assert set(counts) == set(CHAOS_KINDS)

    def test_rate_edges(self):
        assert chaos_decision(1, 0, 0.0) is None
        assert chaos_decision(1, 0, 1.0) in CHAOS_KINDS
        assert chaos_decision(1, 0, 0.5, kinds=()) is None

    def test_delay_bounded_and_pure(self):
        delays = [chaos_delay(3, i, cap=0.02) for i in range(100)]
        assert all(0.0 <= d <= 0.02 for d in delays)
        assert delays == [chaos_delay(3, i, cap=0.02)
                          for i in range(100)]


class TestChaosTransport:
    def test_campaign_completes_with_clean_journal(self, tmp_path):
        """Every fault kind fires against a live server, every request
        still completes, and the journal audits clean."""
        root = str(tmp_path / "s")
        with BackgroundServer(root, workers=0) as bg:
            host, port = bg.address
            transport = ChaosTransport(host, port, seed=11,
                                       fault_rate=0.45)
            client = _client((host, port), transport=transport)
            for i in range(30):
                record = client.run(JobSpec(
                    kind="noop", options={"tag": f"t{i % 5}"}
                ))
                assert record["ok"], record
            assert len(transport.injected) >= 5
            counters = client.stats()["counters"]
            # Exactly one admission per logical request, despite all
            # the retries: nonces attached the replays.
            assert counters["server_submits"] > 30
            assert counters["server_enqueued"] == 30
            client.close()
        summary = verify_journal(os.path.join(root, JOURNAL_BASENAME))
        assert summary["ok"], summary
        assert summary["pending"] == []
        assert summary["duplicate_computed_finishes"] == []

    def test_plan_forces_specific_faults(self, tmp_path):
        with BackgroundServer(str(tmp_path / "s"), workers=0) as bg:
            transport = ChaosTransport(
                *bg.address, fault_rate=0.0,
                plan={0: "partial_write", 2: "torn_frame"},
            )
            client = _client(bg.address, transport=transport)
            assert client.ping()        # ops 0,1: fault then retry
            assert client.ping()        # ops 2,3
            assert transport.injected == [(0, "partial_write"),
                                          (2, "torn_frame")]
            counters = client.stats()["counters"]
            assert counters["server_torn_frames"] >= 2
            client.close()


class TestNonceIdempotency:
    def test_lost_response_does_not_double_admit(self, tmp_path):
        """The unsafe-retry regression: the server executes the request
        but the response is lost. With tenant_quota=1 the old blind
        retry would double-count the quota and re-run the job; the
        nonce retry must attach to the original admission."""
        with BackgroundServer(str(tmp_path / "s"), workers=0,
                              tenant_quota=1) as bg:
            transport = ChaosTransport(
                *bg.address, fault_rate=0.0,
                plan={0: "disconnect_after"},
            )
            client = _client(bg.address, transport=transport)
            record = client.run(JobSpec(kind="noop",
                                        options={"duration": 0.2}))
            assert record["ok"]
            counters = client.stats()["counters"]
            assert counters["server_enqueued"] == 1
            assert counters["server_nonce_attach"] >= 1
            assert "server_rejected_quota" not in counters
            client.close()

    def test_same_nonce_returns_same_job_id(self, tmp_path):
        with BackgroundServer(str(tmp_path / "s"), workers=0) as bg:
            with ServerClient(*bg.address) as client:
                job = JobSpec(kind="noop",
                              options={"duration": 0.2}).to_dict()
                first = client.request({"op": "submit", "job": job,
                                        "nonce": "n-fixed"})
                second = client.request({"op": "submit", "job": job,
                                         "nonce": "n-fixed"})
                assert first["ok"] and second["ok"]
                assert first["job_id"] == second["job_id"]
                done = client.wait(first["job_id"])
                assert done["ok"]
                counters = client.stats()["counters"]
                assert counters["server_enqueued"] == 1


class TestChaosProxy:
    def test_connection_faults_absorbed_by_retries(self, tmp_path):
        with BackgroundServer(str(tmp_path / "s"), workers=0) as bg:
            with BackgroundProxy(bg.address, seed=5,
                                 fault_rate=0.5) as proxy:
                client = _client(proxy.address, timeout=5.0)
                for i in range(10):
                    record = client.run(JobSpec(
                        kind="noop", options={"tag": f"p{i}"}
                    ))
                    assert record["ok"], record
                    # Force a fresh proxied connection per request so
                    # the per-connection fault draw gets exercised.
                    client.transport.close()
                assert proxy.proxy.connections >= 10
                assert len(proxy.proxy.injected) >= 2
                client.close()


class TestSpecPlumbing:
    def test_spec_roundtrip_and_unknown_fields(self):
        spec = ChaosSpec(seed=3, requests=10, fault_rate=0.5)
        assert ChaosSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError, match="unknown chaos spec"):
            ChaosSpec.from_dict({"seed": 1, "warp_factor": 9})

    def test_build_requests_pure_and_repeat_skewed(self):
        spec = ChaosSpec(seed=9, requests=100)
        picks, population = build_requests(spec)
        assert (picks, population) == build_requests(spec)
        assert len(picks) == 100
        # compile+simulate per workload per seed
        assert len(population) == 2 * 2 * 2
        assert len(set(picks)) < len(picks)   # repeats exercised
        with pytest.raises(ValueError, match="no workloads"):
            build_requests(ChaosSpec(workloads=" , "))

    def test_kill_indices_pure_and_bounded(self):
        spec = ChaosSpec(seed=4, requests=50, server_kills=2)
        kills = kill_indices(spec)
        assert kills == kill_indices(spec)
        assert len(kills) == 2
        assert all(10 <= k < 49 for k in kills)
        assert kill_indices(ChaosSpec(server_kills=0)) == set()


class TestMiniCampaign:
    def test_run_chaos_with_server_kill(self, tmp_path):
        """A miniature ``repro chaos`` campaign: real server
        subprocess, one deterministic ``kill -9`` + restart, and the
        full post-audit."""
        spec = ChaosSpec(
            seed=17, requests=6, fault_rate=0.5, workloads="mm",
            scale=0.05, sched_iters=40, attempts=2, unique_seeds=1,
            server_kills=1, retries=12, backoff_base=0.02,
            backoff_cap=0.2,
        )
        report = run_chaos(spec, str(tmp_path / "campaign"))
        assert report["ok"], report
        assert report["completed"] == 6
        assert report["server_kills"] == 1
        assert report["journal"]["duplicate_computed_finishes"] == []
        assert report["journal"]["pending"] == []
        assert report["fsck_dropped"] == 0
