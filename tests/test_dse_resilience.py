"""Resilient DSE candidate evaluation: timeouts, broken pools, retries.

A long-running exploration must never die because one candidate hangs
or a worker process is killed: the explorer retries the candidate once
serially, records it as rejected if that also fails, rebuilds the pool,
and keeps the trajectory bit-identical to a serial run (retries re-run
the same pure evaluation function with the same spawned seed).
"""

from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.adg import topologies
from repro.dse.explorer import DesignSpaceExplorer
from repro.utils.rng import DeterministicRng
from repro.workloads import kernel as make_kernel

DSE_ITERS = 3
SCHED_ITERS = 15


def _make_explorer(**kwargs):
    return DesignSpaceExplorer(
        [make_kernel("mm", 0.05)],
        topologies.dse_initial(),
        rng=DeterministicRng(42),
        sched_iters=SCHED_ITERS,
        initial_sched_iters=SCHED_ITERS * 3,
        **kwargs,
    )


class _FailingFuture:
    def __init__(self, exc):
        self._exc = exc

    def result(self, timeout=None):
        raise self._exc

    def cancel(self):
        return False


class _FailingPool:
    """A pool whose every future fails the given way."""

    def __init__(self, exc_factory):
        self._exc_factory = exc_factory
        self.shut_down = False

    def submit(self, fn, *args, **kwargs):
        return _FailingFuture(self._exc_factory())

    def shutdown(self, wait=True, cancel_futures=False):
        self.shut_down = True


def _run_with_failing_pool(exc_factory, monkeypatch, **run_kwargs):
    explorer = _make_explorer()
    pools = []

    def fake_make_pool(workers):
        pool = _FailingPool(exc_factory)
        pools.append(pool)
        return pool

    monkeypatch.setattr(explorer, "_make_pool", fake_make_pool)
    result = explorer.run(max_iters=DSE_ITERS, workers=2, **run_kwargs)
    return explorer, result, pools


@pytest.fixture(scope="module")
def serial_result():
    return _make_explorer().run(max_iters=DSE_ITERS)


class TestResilientPool:
    def test_timeouts_fall_back_and_match_serial(
        self, serial_result, monkeypatch
    ):
        explorer, result, pools = _run_with_failing_pool(
            FutureTimeout, monkeypatch, eval_timeout=0.001, batch=1,
        )
        counters = explorer.telemetry.counters
        assert counters["dse_worker_timeouts"] > 0
        assert counters["dse_worker_retries"] > 0
        assert counters["dse_pool_rebuilds"] > 0
        # Every timed-out pool was torn down, and the serial retries
        # reproduce the serial trajectory exactly.
        assert all(pool.shut_down for pool in pools[:-1])
        assert result.best_objective == serial_result.best_objective
        assert len(result.history) == len(serial_result.history)

    def test_broken_pool_falls_back_and_matches_serial(
        self, serial_result, monkeypatch
    ):
        explorer, result, pools = _run_with_failing_pool(
            lambda: BrokenProcessPool("worker died"), monkeypatch,
            batch=1,
        )
        counters = explorer.telemetry.counters
        assert counters["worker_errors"] > 0
        assert counters["dse_worker_retries"] > 0
        assert counters["dse_pool_rebuilds"] > 0
        assert result.best_objective == serial_result.best_objective

    def test_retry_failure_rejects_candidate_not_run(self, monkeypatch):
        """When the serial retry also dies, the candidate is rejected
        and the run still completes."""
        import repro.dse.explorer as explorer_mod

        explorer = _make_explorer()
        monkeypatch.setattr(
            explorer, "_make_pool",
            lambda workers: _FailingPool(
                lambda: BrokenProcessPool("worker died")
            ),
        )

        real_eval = explorer_mod._evaluate_candidate
        calls = {"n": 0}

        def flaky_eval(task, context=None):
            calls["n"] += 1
            raise RuntimeError("retry also dies")

        # Initial compile runs before the pool exists; only patch the
        # retry path by swapping after construction of the run via a
        # wrapper that fails only for iteration >= 2 candidates.
        def selective_eval(task, context=None):
            if task.iteration >= 2:
                return flaky_eval(task, context)
            return real_eval(task, context)

        monkeypatch.setattr(
            explorer_mod, "_evaluate_candidate", selective_eval
        )
        result = explorer.run(max_iters=DSE_ITERS, workers=2, batch=1)
        counters = explorer.telemetry.counters
        assert calls["n"] > 0
        assert counters["candidates_failed"] >= calls["n"]
        # Nothing improved (every candidate failed), but the run ended
        # gracefully with the initial design intact.
        assert result.best_adg is not None

    def test_eval_timeout_threads_through_constructor_and_run(self):
        explorer = _make_explorer(eval_timeout=12.5)
        assert explorer.eval_timeout == 12.5
        explorer.eval_timeout = None
        # run() override wins.
        explorer.run(max_iters=1, eval_timeout=30.0)
        assert explorer.eval_timeout == 30.0
