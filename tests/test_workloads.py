"""Functional-correctness tests for every workload.

The canonical contract: for every kernel and every buildable variant,
executing the decoupled-dataflow program must reproduce the reference
(plain Python) semantics exactly (small integer-valued data keeps
floating-point reassociation exact; fft is checked with tolerance).
"""

import copy
import math

import pytest

from repro.compiler.kernel import VariantParams
from repro.errors import CompilationError
from repro.ir import execute_scope
from repro.workloads import (
    WORKLOAD_DOMAINS,
    all_kernels,
    kernel,
    kernels_in_domain,
    workload_names,
)
from repro.workloads.spec import PAPER_SIZES, scaled_size

SCALE = 0.1


def assert_memories_match(kernel_name, got, expected, tolerance=1e-9):
    for array in expected:
        for index, (a, b) in enumerate(zip(got[array], expected[array])):
            assert math.isclose(float(a), float(b), rel_tol=tolerance,
                                abs_tol=tolerance), (
                f"{kernel_name}: {array}[{index}] = {a}, expected {b}"
            )


def check_variant(workload, params):
    memory = workload.make_memory()
    reference = copy.deepcopy(memory)
    scope = workload.build(params)
    scope.bind_constants(memory)
    execute_scope(scope, memory)
    workload.reference(reference)
    assert_memories_match(workload.name, memory, reference)


class TestRegistry:
    def test_all_table1_workloads_registered(self):
        names = set(workload_names())
        for domain in ("machsuite", "sparse", "dsp", "polybench"):
            assert set(WORKLOAD_DOMAINS[domain]) <= names

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            kernel("warp_drive")

    def test_domains_partition(self):
        seen = []
        for names in WORKLOAD_DOMAINS.values():
            seen.extend(names)
        assert len(seen) == len(set(seen))

    def test_scaled_size_shrinks(self):
        paper = PAPER_SIZES["mm"]["n"]
        assert scaled_size("mm", 0.25)["n"] < paper
        assert scaled_size("mm", 1.0)["n"] == paper

    def test_kernels_in_domain(self):
        dsp = kernels_in_domain("dsp", scale=SCALE)
        assert {k.name for k in dsp} == {"qr", "chol", "fft"}


@pytest.mark.parametrize("name", sorted(workload_names()))
class TestFunctionalCorrectness:
    def test_fallback_variant(self, name):
        workload = kernel(name, SCALE)
        check_variant(workload, workload.fallback_params())

    def test_most_aggressive_variant(self, name):
        workload = kernel(name, SCALE)
        buildable = [params for params, _ in workload.variants(None)]
        check_variant(workload, buildable[-1])


class TestVariantSweeps:
    @pytest.mark.parametrize("unroll", [1, 2, 4])
    def test_gemm_unrolls(self, unroll):
        check_variant(kernel("mm", 0.05), VariantParams(unroll=unroll))

    def test_histogram_all_feature_combos(self):
        workload = kernel("histogram", 0.05)
        for params in workload.space.enumerate(None):
            check_variant(workload, params)

    def test_join_both_forms_agree(self):
        workload = kernel("join", 0.05)
        results = []
        for use_join in (True, False):
            memory = workload.make_memory()
            scope = workload.build(VariantParams(use_join=use_join))
            execute_scope(scope, memory)
            results.append(list(memory["OUT"]))
        assert results[0] == results[1]

    def test_md_indirect_and_fallback_agree(self):
        workload = kernel("md", 0.05)
        outs = []
        for use_indirect in (True, False):
            memory = workload.make_memory()
            scope = workload.build(
                VariantParams(unroll=2, use_indirect=use_indirect)
            )
            scope.bind_constants(memory)
            execute_scope(scope, memory)
            outs.append(list(memory["F"]))
        assert outs[0] == outs[1]

    def test_indivisible_unroll_rejected(self):
        workload = kernel("md", 0.05)
        with pytest.raises(CompilationError):
            workload.build(VariantParams(unroll=3))


class TestWorkloadStructure:
    def test_every_kernel_has_reference_and_memory(self):
        for workload in all_kernels(scale=0.05):
            assert callable(workload.reference)
            memory = workload.make_memory()
            assert memory and all(
                len(values) > 0 for values in memory.values()
            )

    def test_scopes_validate(self):
        for workload in all_kernels(scale=0.05):
            scope = workload.build(workload.fallback_params())
            scope.validate()

    def test_sparse_kernels_expose_feature_dimensions(self):
        assert kernel("histogram", SCALE).space.has_atomic
        assert kernel("join", SCALE).space.has_join
        assert kernel("md", SCALE).space.has_indirect
        assert not kernel("pb_mm", SCALE).space.has_join

    def test_chol_streams_are_inductive(self):
        scope = kernel("chol", SCALE).build(VariantParams())
        update = scope.region("chol_u")
        from repro.ir.region import as_stream_list

        inductive = [
            s for binding in update.input_streams.values()
            for s in as_stream_list(binding)
            if getattr(s, "length_stretch", 0)
        ]
        assert inductive, "chol must exercise the inductive controller"

    def test_fft_volume_conservation(self):
        workload = kernel("fft", 0.05)
        scope = workload.build(VariantParams())
        region = scope.regions[0]
        # In-place: total read volume equals total write volume per port
        # pair, and covers log2(n) full passes over half the data.
        from repro.ir.region import as_stream_list

        read_volume = sum(
            s.volume() for s in as_stream_list(region.input_streams["ar"])
        )
        write_volume = sum(
            s.volume()
            for s in as_stream_list(region.output_streams["ar_o"])
        )
        assert read_volume == write_volume

    def test_frequency_kernels_marked(self):
        scope = kernel("qr", SCALE).build(VariantParams())
        assert all(region.frequency > 1 for region in scope.regions)

    def test_resparsify_outputs_compacting(self):
        scope = kernel("resparsify", 0.05).build(VariantParams())
        region = scope.regions[0]
        assert all(
            getattr(stream, "compacting", False)
            for stream in region.output_streams.values()
        )

    def test_region_instance_counts_consistent(self):
        for workload in all_kernels(scale=0.05):
            scope = workload.build(workload.fallback_params())
            for region in scope.regions:
                count = region.instance_count()
                assert count >= 0


class TestMemoryDeterminism:
    def test_make_memory_reproducible(self):
        workload = kernel("stencil2d", 0.05)
        assert workload.make_memory() == workload.make_memory()

    def test_different_kernels_different_data(self):
        mm = kernel("mm", 0.05).make_memory()
        pb = kernel("pb_mm", 0.05).make_memory()
        assert mm["A"] != pb["A"]
