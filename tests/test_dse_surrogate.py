"""Multi-fidelity DSE: surrogate determinism, fidelity plumbing, and
the fuzzer's grouped batched-engine path.

The multi-fidelity funnel must not weaken any determinism contract the
explorer already pins: workers=N reproduces workers=1 *with the
surrogate training online*, checkpoint/resume restores the training
buffer bit-exactly, and fidelity="full" bypasses the funnel entirely.
"""

import json
import multiprocessing
import pickle

import pytest

from repro.adg import topologies
from repro.adg.features import GRAPH_FEATURE_NAMES, graph_feature_vector
from repro.dse import DSE_FIDELITIES, DesignSpaceExplorer, default_fidelity
from repro.errors import DseError
from repro.estimation.surrogate import SurrogateModel
from repro.utils.rng import DeterministicRng
from repro.utils.telemetry import Telemetry
from repro.workloads import kernel as make_kernel

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

SEED = 11


def _make_explorer(seed=SEED, **kwargs):
    kwargs.setdefault("sched_iters", 30)
    return DesignSpaceExplorer(
        [make_kernel("mm", 0.05)],
        topologies.dse_initial(),
        rng=DeterministicRng(seed),
        **kwargs,
    )


def _trajectory(result):
    return [
        (
            entry.iteration,
            entry.candidate,
            entry.accepted,
            round(entry.area_mm2, 9),
            round(entry.power_mw, 9),
            entry.objective if entry.objective == float("-inf")
            else round(entry.objective, 9),
            tuple(entry.mutations),
        )
        for entry in result.history
    ]


def _surrogate_state(explorer):
    """Canonical surrogate snapshot (buffer + fitted weights).

    JSON for the python-object half (pickle bytes vary with string
    interning across process boundaries even for equal values) and raw
    array bytes for the weights — together this is the model's entire
    behavior-determining state, bit-exact.
    """
    model = explorer.surrogate
    return (
        json.dumps(
            [model.buffer, model.fitted_count, model.refits,
             model.calibration_log, model._kernel_names],
            sort_keys=True,
        ),
        None if model._weights is None else model._weights.tobytes(),
        None if model._scale is None else model._scale.tobytes(),
    )


# ---------------------------------------------------------------------------
# Feature vector
# ---------------------------------------------------------------------------

class TestGraphFeatures:
    def test_fixed_length_and_names_align(self):
        vector = graph_feature_vector(topologies.dse_initial())
        assert len(vector) == len(GRAPH_FEATURE_NAMES)
        assert all(isinstance(value, float) for value in vector)

    def test_pure_function_of_graph(self):
        adg = topologies.dse_initial()
        assert graph_feature_vector(adg) == graph_feature_vector(adg)
        assert (graph_feature_vector(adg)
                == graph_feature_vector(adg.clone()))

    def test_sensitive_to_structure(self):
        adg = topologies.dse_initial()
        mutated = adg.clone()
        mutated.remove(mutated.pes()[0].name)
        assert graph_feature_vector(mutated) != graph_feature_vector(adg)


# ---------------------------------------------------------------------------
# Surrogate model unit behavior
# ---------------------------------------------------------------------------

class TestSurrogateModel:
    def _features(self, bump=0.0):
        vector = graph_feature_vector(topologies.dse_initial())
        vector[0] += bump
        return vector

    def test_untrained_ranks_by_index(self):
        model = SurrogateModel()
        predictions = [model.predict(self._features(i)) for i in range(6)]
        assert SurrogateModel.rank(predictions) == list(range(6))
        assert all(p.score == 0.0 for p in predictions)

    def test_refit_at_boundary_and_calibration_record(self):
        model = SurrogateModel(recalibrate_every=4)
        for sample in range(4):
            features = self._features(sample)
            model.observe(features, True, 2.0 + sample,
                          cycles={"mm": 100 + sample},
                          prediction=model.predict(features))
            assert model.maybe_refit() is None or sample == 3
        assert model.trained
        assert model.refits == 1
        # Second window: predictions are now trained, so calibration
        # errors resolve against them at the next refit.
        for sample in range(4):
            features = self._features(10 + sample)
            model.observe(features, sample % 2 == 0, 3.0 + sample,
                          cycles={"mm": 90 + sample},
                          prediction=model.predict(features))
        record = model.maybe_refit()
        assert record["refit"] == 2
        assert record["window"] == 4
        assert record["objective_mae"] >= 0.0
        assert 0.0 <= record["schedulable_brier"] <= 1.0
        assert record == model.calibration_log[-1]

    def test_training_is_pure_function_of_history(self):
        def build():
            model = SurrogateModel(recalibrate_every=3)
            for sample in range(7):
                model.observe(
                    self._features(sample), sample % 3 != 0,
                    1.0 + sample, cycles={"mm": 50 + sample},
                )
                model.maybe_refit()
            return model

        one, two = build(), build()
        assert one._weights.tobytes() == two._weights.tobytes()
        assert one.buffer == two.buffer
        assert one.calibration_log == two.calibration_log

    def test_pickle_round_trip_bit_exact(self):
        model = SurrogateModel(recalibrate_every=2)
        for sample in range(5):
            model.observe(self._features(sample), True, 1.5 + sample,
                          cycles={"mm": 70 + sample},
                          prediction=model.predict(self._features(sample)))
            model.maybe_refit()
        clone = pickle.loads(pickle.dumps(model))
        assert clone.buffer == model.buffer
        assert clone._weights.tobytes() == model._weights.tobytes()
        features = self._features(99)
        assert clone.predict(features).score == \
            model.predict(features).score

    def test_failed_candidates_train_schedulability_only(self):
        model = SurrogateModel(recalibrate_every=2)
        model.observe(self._features(0), False, float("-inf"))
        model.observe(self._features(1), True, 2.0, cycles={"mm": 10})
        model.maybe_refit()
        assert model.trained
        _, ok_flags, log_objectives, _ = zip(*model.buffer)
        assert ok_flags == (False, True)
        assert log_objectives[0] is None


# ---------------------------------------------------------------------------
# Fidelity selection and validation
# ---------------------------------------------------------------------------

class TestFidelityValidation:
    def test_default_fidelity_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_DSE_FIDELITY", raising=False)
        assert default_fidelity() == "multi"
        monkeypatch.setenv("REPRO_DSE_FIDELITY", "full")
        assert default_fidelity() == "full"

    def test_env_typo_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_DSE_FIDELITY", "mutli")
        with pytest.raises(DseError, match="mutli"):
            default_fidelity()
        with pytest.raises(DseError, match="mutli"):
            _make_explorer()

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(DseError, match="unknown DSE fidelity"):
            _make_explorer(fidelity="turbo")

    @pytest.mark.parametrize("knob,value", [
        ("surrogate_top", 0),
        ("surrogate_widen", 0),
        ("recalibrate_every", 0),
    ])
    def test_bad_knobs_rejected(self, knob, value):
        with pytest.raises(DseError, match=knob):
            _make_explorer(**{knob: value})

    def test_full_fidelity_has_no_surrogate(self):
        explorer = _make_explorer(fidelity="full")
        assert explorer.surrogate is None
        assert "full" in DSE_FIDELITIES and "multi" in DSE_FIDELITIES


# ---------------------------------------------------------------------------
# The funnel itself
# ---------------------------------------------------------------------------

class TestMultiFidelityFunnel:
    @pytest.fixture(scope="class")
    def multi(self):
        telemetry = Telemetry()
        explorer = _make_explorer(
            telemetry=telemetry, fidelity="multi", recalibrate_every=4,
        )
        result = explorer.run(max_iters=4, workers=1, batch=3)
        return explorer, result, telemetry

    @pytest.fixture(scope="class")
    def full(self):
        telemetry = Telemetry()
        explorer = _make_explorer(telemetry=telemetry, fidelity="full")
        result = explorer.run(max_iters=4, workers=1, batch=3)
        return explorer, result, telemetry

    def test_considers_wider_generations(self, multi, full):
        _, result, telemetry = multi
        considered = telemetry.counters["candidates_considered"]
        evaluated = telemetry.counters["candidates_evaluated"]
        assert considered > 3 * evaluated
        assert result.telemetry["considered_per_sec"] > \
            result.telemetry["candidates_per_sec"]

    def test_full_fidelity_considers_what_it_evaluates(self, full):
        _, _, telemetry = full
        assert telemetry.counters["candidates_considered"] == \
            telemetry.counters["candidates_evaluated"]
        assert "surrogate_scored" not in telemetry.counters

    def test_surrogate_trains_and_reports_calibration(self, multi):
        explorer, _, telemetry = multi
        assert explorer.surrogate.refits >= 1
        assert telemetry.counters["surrogate_refits"] >= 1
        record = explorer.surrogate.calibration_log[-1]
        assert {"refit", "samples", "window",
                "objective_mae", "schedulable_brier"} <= set(record)

    def test_finalists_counted(self, multi):
        _, _, telemetry = multi
        assert telemetry.counters["fidelity_finalists"] == \
            telemetry.counters["candidates_evaluated"]

    def test_history_indices_contiguous(self, multi):
        _, result, _ = multi
        by_iteration = {}
        for entry in result.history:
            by_iteration.setdefault(entry.iteration, []).append(
                entry.candidate
            )
        for iteration, indices in by_iteration.items():
            assert indices == list(range(len(indices))), iteration

    def test_summary_shape(self, multi):
        _, result, _ = multi
        summary = result.telemetry
        assert summary["fidelity"] == "multi"
        assert summary["generation_width"] == summary["finalists"] * 8
        assert summary["surrogate"]["refits"] >= 1
        assert summary["surrogate"]["last_calibration"] is not None


# ---------------------------------------------------------------------------
# Determinism: workers and checkpoint/resume with training online
# ---------------------------------------------------------------------------

class TestSurrogateDeterminism:
    def _run(self, workers, checkpoint=None, resume=False, max_iters=4):
        explorer = _make_explorer(fidelity="multi", recalibrate_every=4)
        result = explorer.run(
            max_iters=max_iters, workers=workers, batch=3,
            checkpoint_path=checkpoint, resume=resume,
        )
        return explorer, result

    @pytest.mark.skipif(not _HAS_FORK, reason="needs fork start method")
    def test_workers_do_not_perturb_surrogate_trajectory(self):
        serial_explorer, serial = self._run(workers=1)
        pooled_explorer, pooled = self._run(workers=3)
        assert _trajectory(serial) == _trajectory(pooled)
        assert serial.best_objective == pooled.best_objective
        assert _surrogate_state(serial_explorer) == \
            _surrogate_state(pooled_explorer)

    def test_resume_restores_training_buffer_bit_exactly(self, tmp_path):
        full_explorer, full = self._run(workers=1)

        path = str(tmp_path / "ck.json")
        self._run(workers=1, checkpoint=path, max_iters=2)
        resumed_explorer, resumed = self._run(
            workers=1, checkpoint=path, resume=True,
        )
        assert _trajectory(resumed) == _trajectory(full)
        assert resumed.best_objective == full.best_objective
        assert _surrogate_state(resumed_explorer) == \
            _surrogate_state(full_explorer)

    def test_resume_refuses_fidelity_mismatch(self, tmp_path):
        path = str(tmp_path / "ck.json")
        self._run(workers=1, checkpoint=path, max_iters=2)
        other = _make_explorer(fidelity="full")
        with pytest.raises(DseError, match="fidelity"):
            other.run(max_iters=4, checkpoint_path=path, resume=True)

    def test_resume_refuses_knob_mismatch(self, tmp_path):
        path = str(tmp_path / "ck.json")
        self._run(workers=1, checkpoint=path, max_iters=2)
        other = _make_explorer(fidelity="multi", recalibrate_every=5)
        with pytest.raises(DseError, match="recalibrate_every"):
            other.run(max_iters=4, checkpoint_path=path, resume=True)


# ---------------------------------------------------------------------------
# Server job plumbing: knobs flow through options into the job key
# ---------------------------------------------------------------------------

class TestServerFidelityKnobs:
    def _spec(self, **options):
        from repro.server.jobs import JobSpec

        return JobSpec(
            kind="dse", workload="mm", preset="dse_initial",
            scale=0.05, seed=7, sched_iters=20,
            options={"iters": 2, **options},
        )

    def test_job_key_separates_fidelities(self):
        from repro.server.jobs import job_key

        keys = {
            job_key(self._spec()),
            job_key(self._spec(fidelity="full")),
            job_key(self._spec(fidelity="multi")),
            job_key(self._spec(fidelity="multi", surrogate_widen=4)),
            job_key(self._spec(fidelity="multi", recalibrate_every=8)),
            job_key(self._spec(fidelity="multi", surrogate_top=2)),
        }
        assert len(keys) == 6

    def test_dse_job_reports_fidelity(self):
        from repro.server.jobs import execute_job

        outcome = execute_job(
            self._spec(fidelity="multi", surrogate_widen=2,
                       recalibrate_every=4).to_dict()
        )
        assert outcome["status"] == "ok"
        assert outcome["summary"]["fidelity"] == "multi"
        artifact = pickle.loads(outcome["payload"])
        assert artifact["candidates_considered"] >= \
            artifact["candidates_evaluated"]
        assert artifact["surrogate"]["recalibrate_every"] == 4

    def test_dse_job_ignores_env_fidelity(self, monkeypatch):
        from repro.server.jobs import execute_job

        # Served jobs must be pure in the spec: a typo'd env var on the
        # server host cannot change (or break) a job's result.
        monkeypatch.setenv("REPRO_DSE_FIDELITY", "bogus")
        outcome = execute_job(self._spec(fidelity="full").to_dict())
        assert outcome["status"] == "ok"
        assert outcome["summary"]["fidelity"] == "full"
        assert pickle.loads(outcome["payload"])["surrogate"] is None


# ---------------------------------------------------------------------------
# Fuzzer: grouped batched-engine lane parity
# ---------------------------------------------------------------------------

class TestFuzzBatchedCampaign:
    CASES = 10

    def _statuses(self, summary):
        return (summary.passed, summary.skipped,
                sorted(case.name for case, _ in summary.failures))

    def test_batched_campaign_matches_per_case(self):
        from repro.verify.fuzz import run_fuzz

        telemetry = Telemetry()
        batched = run_fuzz(cases=self.CASES, seed=2026, shrink=False,
                           batch_sim=True, telemetry=telemetry)
        per_case = run_fuzz(cases=self.CASES, seed=2026, shrink=False,
                            batch_sim=False)
        assert self._statuses(batched) == self._statuses(per_case)
        assert telemetry.counters["sim_batch_runs"] == 1
        assert telemetry.counters["sim_batch_lanes"] == batched.passed

    def test_batched_campaign_detects_injected_divergence(self):
        from repro.verify import fuzz as fuzz_module

        original = fuzz_module._diff_engines

        def sabotage(result, engine, stepped, other):
            original(result, engine, stepped, other)
            if engine == "batched":
                result.record("engine-divergence", "injected", injected=1)

        # The batched path must be load-bearing: a divergence surfaced
        # only at batch-resolution time still fails the campaign.
        fuzz_module._diff_engines, saved = sabotage, original
        try:
            summary = fuzz_module.run_fuzz(
                cases=3, seed=2026, shrink=False, batch_sim=True,
            )
        finally:
            fuzz_module._diff_engines = saved
        assert not summary.ok
        assert all(
            any(d["kind"] == "engine-divergence"
                for d in result.divergences)
            for _, result in summary.failures
        )

    def test_refit_events_land_in_run_log(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        telemetry = Telemetry(jsonl_path=path)
        explorer = _make_explorer(
            telemetry=telemetry, fidelity="multi", recalibrate_every=4,
        )
        explorer.run(max_iters=3, workers=1, batch=3)
        telemetry.close()
        records = [json.loads(line) for line in open(path)]
        refits = [r for r in records if r["type"] == "surrogate_refit"]
        assert refits
        for event in refits:
            assert event["samples"] >= 4
            assert "objective_mae" in event
        summary = records[-1]
        assert summary["type"] == "summary"
        assert summary["surrogate"]["refits"] == len(refits)
