"""Hardware fault models, degradation engine, and campaigns."""

import json

import pytest

from repro.adg.serialize import adg_to_dict
from repro.adg.topologies import softbrain
from repro.errors import FaultError
from repro.faults import (
    FAULT_KINDS,
    FaultCase,
    FaultSpec,
    apply_faults,
    degrade,
    draw_faults,
    generate_case,
    load_repro,
    prepare_baseline,
    replay_repro,
    run_campaign,
    run_case,
    shrink_case,
    write_repro,
)
import sys

# The package re-exports the degrade() function under the same name as
# its submodule; fetch the module itself for monkeypatching.
degrade_mod = sys.modules["repro.faults.degrade"]
from repro.utils.rng import DeterministicRng
from repro.utils.telemetry import Telemetry

SCHED_ITERS = 60


@pytest.fixture(scope="module")
def mm_baseline():
    return prepare_baseline("mm", sched_iters=SCHED_ITERS, seed=2026)


# ---------------------------------------------------------------------------
# Fault models
# ---------------------------------------------------------------------------

class TestFaultModels:
    def test_draw_is_deterministic(self):
        draws = [
            draw_faults(softbrain(), DeterministicRng((9, "case", 4)), 5)
            for _ in range(2)
        ]
        assert [f.to_dict() for f in draws[0]] == \
               [f.to_dict() for f in draws[1]]

    def test_replay_onto_fresh_adg_is_inverse(self):
        base = softbrain()
        faults = draw_faults(base, DeterministicRng(3), 6)
        assert faults
        records = [f.to_dict() for f in faults]
        # JSON round-trip then replay onto an untouched preset.
        replayed = [
            FaultSpec.from_dict(json.loads(json.dumps(r)))
            for r in records
        ]
        mutated = apply_faults(base.clone(), faults)
        fresh = apply_faults(softbrain(), replayed)
        assert adg_to_dict(mutated) == adg_to_dict(fresh)

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_every_kind_draws_and_applies(self, kind):
        adg = softbrain()
        faults = draw_faults(
            adg, DeterministicRng((1, kind)), 2, kinds=[kind]
        )
        assert faults, f"no {kind} fault drawable on softbrain"
        assert all(f.kind == kind for f in faults)
        apply_faults(adg.clone(), faults)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="meteor_strike", target="pe_0_0")
        with pytest.raises(FaultError):
            draw_faults(softbrain(), DeterministicRng(0), 1,
                        kinds=["meteor_strike"])

    def test_apply_to_missing_target_raises(self):
        adg = softbrain()
        adg.remove("pe_0_0")
        with pytest.raises(FaultError):
            FaultSpec(kind="dead_pe", target="pe_0_0").apply(adg)
        with pytest.raises(FaultError):
            FaultSpec(
                kind="dead_link",
                link={"src": "pe_0_0", "dst": "sw_0_0", "ordinal": 0},
            ).apply(adg)

    def test_stuck_switch_removes_all_outputs(self):
        adg = softbrain()
        switch = next(s.name for s in adg.switches()
                      if adg.out_links(s.name))
        FaultSpec(kind="stuck_switch", target=switch).apply(adg)
        assert adg.out_links(switch) == []
        assert adg.has_node(switch)  # it still sinks traffic


# ---------------------------------------------------------------------------
# Cases + degradation engine
# ---------------------------------------------------------------------------

class TestDegrade:
    def test_case_generation_pure_in_seed_index(self):
        cases = [
            generate_case(2026, 7, workloads=("mm", "md"), max_faults=3)
            for _ in range(2)
        ]
        assert cases[0].to_dict() == cases[1].to_dict()
        roundtrip = FaultCase.from_dict(
            json.loads(json.dumps(cases[0].to_dict()))
        )
        assert roundtrip.to_dict() == cases[0].to_dict()

    def test_dead_pe_recovers(self, mm_baseline):
        placed = set(mm_baseline.compiled.schedule.placement.values())
        victim = sorted(
            p.name for p in mm_baseline.adg.pes() if p.name in placed
        )[0]
        telemetry = Telemetry()
        outcome = degrade(
            mm_baseline, [FaultSpec(kind="dead_pe", target=victim)],
            rng=DeterministicRng(1), sched_iters=SCHED_ITERS,
            telemetry=telemetry,
        )
        assert outcome.status in ("recovered", "degraded")
        assert outcome.stripped_entries > 0
        assert outcome.cycles > 0
        assert telemetry.counters["fault_repair_iterations"] == \
            outcome.repair_iterations

    def test_unmappable_when_no_pe_left(self, mm_baseline):
        pes = sorted(p.name for p in mm_baseline.adg.pes())
        faults = [FaultSpec(kind="dead_pe", target=name)
                  for name in pes[:-1]]
        outcome = degrade(
            mm_baseline, faults, rng=DeterministicRng(2),
            sched_iters=20,
        )
        # One surviving PE cannot host the whole kernel; this must be an
        # honest failure, never a miscompile.
        assert outcome.status == "unmappable"

    def test_remap_mode_skips_repair(self, mm_baseline):
        telemetry = Telemetry()
        outcome = degrade(
            mm_baseline, [], rng=DeterministicRng(3),
            sched_iters=SCHED_ITERS, telemetry=telemetry, mode="remap",
        )
        assert outcome.status in ("recovered", "degraded")
        assert outcome.remap_used
        assert outcome.repair_iterations == 0
        assert telemetry.counters["fault_full_remaps"] == 1


# ---------------------------------------------------------------------------
# Injected repair bug -> shrunk, replayable repro file
# ---------------------------------------------------------------------------

def _corrupting_repair(schedule, adg, rng=None, max_iters=200,
                       patience=25, telemetry=None):
    """A deliberately buggy repair: schedules fine, then drops a route
    while still reporting the cost as legal."""
    from repro.scheduler.repair import repair_schedule as real_repair

    repaired, cost = real_repair(
        schedule, adg, rng=rng, max_iters=max_iters,
        patience=patience, telemetry=telemetry,
    )
    if cost.is_legal and repaired.routes:
        edge = sorted(repaired.routes, key=repr)[0]
        del repaired.routes[edge]
    return repaired, cost


class TestInjectedRepairBug:
    def test_bug_yields_shrunk_replayable_repro(
        self, mm_baseline, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(
            degrade_mod, "repair_schedule", _corrupting_repair
        )
        case = generate_case(99, 0, workloads=("mm",), max_faults=3)
        assert len(case.faults) >= 1
        outcome = run_case(case, baseline=mm_baseline,
                           sched_iters=SCHED_ITERS)
        assert outcome.status == "miscompiled"
        assert "lint" in outcome.detail

        shrunk, shrunk_outcome = shrink_case(
            case, baseline=mm_baseline, sched_iters=SCHED_ITERS
        )
        assert shrunk_outcome.status == "miscompiled"
        assert len(shrunk.faults) <= len(case.faults)
        # The injected bug corrupts every repair, so shrinking must
        # reach a single-fault reproducer.
        assert len(shrunk.faults) == 1

        path = tmp_path / "repro.json"
        write_repro(path, shrunk, shrunk_outcome)
        loaded = load_repro(path)
        assert loaded.to_dict() == shrunk.to_dict()
        replayed = replay_repro(path, sched_iters=SCHED_ITERS)
        assert replayed.status == "miscompiled"

        # With the bug removed the same repro is healthy again.
        monkeypatch.undo()
        assert replay_repro(path, sched_iters=SCHED_ITERS).status \
            in ("recovered", "degraded")

    def test_repro_version_guard(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999, "spec": {}}))
        with pytest.raises(ValueError):
            load_repro(path)


# ---------------------------------------------------------------------------
# Campaigns
# ---------------------------------------------------------------------------

class TestCampaign:
    def test_small_campaign_clean_and_curves(self, tmp_path):
        telemetry = Telemetry(
            jsonl_path=str(tmp_path / "faults.jsonl")
        )
        with telemetry:
            summary = run_campaign(
                workloads=("mm",), cases=4, seed=5,
                sched_iters=SCHED_ITERS,
                telemetry=telemetry, out_dir=str(tmp_path),
            )
        assert summary.cases == 4
        assert summary.ok
        assert sum(summary.counts.values()) == 4
        rows = summary.curve_rows()
        assert rows and all(0.0 <= row["perf_retained"] for row in rows)
        kinds = [
            json.loads(line).get("kind")
            for line in (tmp_path / "faults.jsonl").read_text()
                                                   .splitlines()
        ]
        assert "degradation-curve" in kinds
        assert "fault-campaign-summary" in kinds
        assert telemetry.counters["fault_cases"] == 4

    def test_campaign_deterministic(self):
        def outcomes():
            summary = run_campaign(
                workloads=("mm",), cases=3, seed=17,
                sched_iters=SCHED_ITERS,
            )
            return [
                (case.name, outcome.status, outcome.cycles)
                for case, outcome in summary.results
            ]

        assert outcomes() == outcomes()

    def test_campaign_writes_repro_on_miscompile(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(
            degrade_mod, "repair_schedule", _corrupting_repair
        )
        summary = run_campaign(
            workloads=("mm",), cases=2, seed=23,
            sched_iters=SCHED_ITERS, out_dir=str(tmp_path),
        )
        assert not summary.ok
        assert summary.counts.get("miscompiled", 0) > 0
        assert summary.repro_paths
        for path in summary.repro_paths:
            assert load_repro(path).seed == 23
