"""Tests for repro.utils.telemetry: nested timers, counters, JSONL."""

import json

from repro.utils.telemetry import Telemetry


class FakeClock:
    """Deterministic clock: every call advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestTimers:
    def test_timer_accumulates(self):
        telemetry = Telemetry(clock=FakeClock(step=1.0))
        with telemetry.timer("compile"):
            pass
        with telemetry.timer("compile"):
            pass
        slot = telemetry.timings["compile"]
        assert slot["count"] == 2
        assert slot["seconds"] > 0

    def test_timers_nest_into_dotted_paths(self):
        telemetry = Telemetry(clock=FakeClock(step=0.5))
        with telemetry.timer("generation"):
            with telemetry.timer("estimate"):
                pass
            with telemetry.timer("compile"):
                pass
        assert "generation" in telemetry.timings
        assert "generation/estimate" in telemetry.timings
        assert "generation/compile" in telemetry.timings
        assert "estimate" not in telemetry.timings

    def test_parent_time_covers_children(self):
        telemetry = Telemetry(clock=FakeClock(step=0.25))
        with telemetry.timer("outer"):
            with telemetry.timer("inner"):
                pass
        assert (
            telemetry.total_seconds("outer")
            >= telemetry.total_seconds("outer/inner")
        )

    def test_stack_unwinds_on_exception(self):
        telemetry = Telemetry(clock=FakeClock())
        try:
            with telemetry.timer("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        # A later sibling timer must not appear nested under "boom".
        with telemetry.timer("after"):
            pass
        assert "after" in telemetry.timings
        assert "boom/after" not in telemetry.timings

    def test_add_time_merges_external_durations(self):
        telemetry = Telemetry()
        telemetry.add_time("worker/compile", 1.5)
        telemetry.add_time("worker/compile", 0.5, count=2)
        slot = telemetry.timings["worker/compile"]
        assert slot["seconds"] == 2.0
        assert slot["count"] == 3

    def test_total_seconds_default(self):
        assert Telemetry().total_seconds("nope") == 0.0


class TestCounters:
    def test_incr_accumulates(self):
        telemetry = Telemetry()
        telemetry.incr("evaluated")
        telemetry.incr("evaluated", 4)
        assert telemetry.counters["evaluated"] == 5

    def test_merge_counters(self):
        telemetry = Telemetry()
        telemetry.incr("a", 1)
        telemetry.merge_counters({"a": 2, "b": 7})
        assert telemetry.counters == {"a": 3, "b": 7}

    def test_merge_timings(self):
        telemetry = Telemetry()
        telemetry.merge_timings({"x": 1.0})
        telemetry.merge_timings({"x": 2.0})
        assert telemetry.total_seconds("x") == 3.0


class TestJsonlLog:
    def test_round_trips_line_by_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Telemetry(jsonl_path=str(path)) as telemetry:
            telemetry.event({"type": "generation", "iteration": 2,
                             "objectives": [1.5, None]})
            telemetry.event({"type": "summary", "counters": {"n": 3}})
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "generation"
        assert records[0]["objectives"] == [1.5, None]
        assert records[1]["counters"]["n"] == 3

    def test_no_path_no_file(self, tmp_path):
        telemetry = Telemetry()
        telemetry.event({"type": "x"})
        telemetry.close()
        assert list(tmp_path.iterdir()) == []

    def test_nonserializable_values_stringified(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Telemetry(jsonl_path=str(path)) as telemetry:
            telemetry.event({"weird": {1, 2}})
        assert json.loads(path.read_text())["weird"]

    def test_event_after_close_appends(self, tmp_path):
        """Regression: an event after close() used to reopen the log
        with mode "w", silently truncating every earlier record."""
        path = tmp_path / "run.jsonl"
        telemetry = Telemetry(jsonl_path=str(path))
        telemetry.event({"type": "first"})
        telemetry.close()
        telemetry.event({"type": "late"})
        telemetry.close()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [r["type"] for r in records] == ["first", "late"]


class TestDisabled:
    def test_disabled_writes_no_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        telemetry = Telemetry(jsonl_path=str(path), enabled=False)
        with telemetry.timer("t"):
            telemetry.incr("c")
            telemetry.event({"type": "x"})
        telemetry.close()
        assert not path.exists()

    def test_disabled_records_nothing(self):
        telemetry = Telemetry(enabled=False)
        with telemetry.timer("t"):
            telemetry.incr("c", 5)
            telemetry.add_time("x", 1.0)
            telemetry.merge_counters({"m": 1})
        assert telemetry.timings == {}
        assert telemetry.counters == {}
        assert telemetry.summary() == {"timings": {}, "counters": {}}


class TestSummary:
    def test_summary_snapshot_is_detached(self):
        telemetry = Telemetry(clock=FakeClock())
        with telemetry.timer("t"):
            pass
        telemetry.incr("c")
        snapshot = telemetry.summary()
        snapshot["counters"]["c"] = 99
        snapshot["timings"]["t"]["count"] = 99
        assert telemetry.counters["c"] == 1
        assert telemetry.timings["t"]["count"] == 1

    def test_summary_is_json_serializable(self):
        telemetry = Telemetry(clock=FakeClock())
        with telemetry.timer("t"):
            telemetry.incr("c")
        json.dumps(telemetry.summary())
