"""Smoke tests for the reproduction harness drivers (fast paths only;
the full figures run under benchmarks/)."""

from repro.harness import fig13, table1
from repro.harness.fig12 import build_variant
from repro.harness.report import format_table


class TestReport:
    def test_format_table_alignment(self):
        rows = [
            {"name": "a", "value": 1.2345},
            {"name": "bbbb", "value": 22},
        ]
        text = format_table(rows, title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="x")

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestTable1:
    def test_rows_have_both_sizes(self):
        rows, summary = table1.run()
        assert summary["workloads"] == len(rows)
        for row in rows:
            assert row["paper_size"] and row["scaled_size"]


class TestFig13Driver:
    def test_small_run(self):
        rows, summary = fig13.run(dims=(2,), path_counts=(3,))
        assert len(rows) == 1
        assert rows[0]["covered"]
        assert summary["mean_ratio"] >= 1.0

    def test_fabric_mesh_strips_non_fabric(self):
        adg = fig13.fabric_mesh(2)
        kinds = {node.KIND for node in adg.nodes()}
        assert kinds == {"pe", "switch"}


class TestFig12Variants:
    def test_baseline_matches_paper_description(self):
        adg = build_variant()
        assert len(adg.pes()) == 16
        assert all(not pe.is_dynamic and not pe.is_shared
                   for pe in adg.pes())
        spad = adg.scratchpad()
        assert spad.width_bytes == 64  # 512-bit scratchpad
        assert not spad.indirect

    def test_feature_toggles_independent(self):
        shared = build_variant(shared=True)
        assert sum(pe.is_shared for pe in shared.pes()) == 4
        assert not any(pe.is_dynamic for pe in shared.pes())

        dynamic = build_variant(dynamic=True)
        assert all(pe.is_dynamic for pe in dynamic.pes())
        assert dynamic.has_stream_join()

        indirect = build_variant(indirect=True)
        assert indirect.scratchpad().indirect
        assert indirect.scratchpad().atomic_update
