"""Tests for design-space exploration."""

import pytest

from repro.adg import topologies, validate_adg
from repro.dse import AdgMutator, DesignSpaceExplorer, DseObjective
from repro.dse.mutation import trim_unused_features
from repro.errors import DseError
from repro.utils.rng import DeterministicRng
from repro.workloads import kernel as make_kernel


class TestMutations:
    def test_mutations_keep_validity(self):
        mutator = AdgMutator(DeterministicRng(0))
        adg = topologies.dse_initial()
        for _ in range(30):
            adg, descriptions = mutator.mutate(adg)
            assert descriptions
            validate_adg(adg, strict=False)

    def test_original_untouched(self):
        mutator = AdgMutator(DeterministicRng(1))
        adg = topologies.dse_initial()
        snapshot = adg.stats()
        mutator.mutate(adg, count=3)
        assert adg.stats() == snapshot

    def test_mutation_deterministic(self):
        results = []
        for _ in range(2):
            mutator = AdgMutator(DeterministicRng(5))
            _, descriptions = mutator.mutate(
                topologies.dse_initial(), count=3
            )
            results.append(descriptions)
        assert results[0] == results[1]

    def test_never_removes_last_pe(self):
        mutator = AdgMutator(DeterministicRng(2))
        adg = topologies.cca()
        for _ in range(25):
            adg, _ = mutator.mutate(adg)
            assert len(adg.pes()) >= 1

    def test_memory_interfaces_fixed(self):
        """Section V-D: one DMA + one scratchpad throughout DSE."""
        mutator = AdgMutator(DeterministicRng(3))
        adg = topologies.dse_initial()
        for _ in range(30):
            adg, _ = mutator.mutate(adg)
            assert len(adg.memories()) == 2
            assert adg.control_core() is not None

    def test_trim_unused_features(self):
        from repro.compiler import compile_kernel

        adg = topologies.dse_initial()
        result = compile_kernel(
            make_kernel("mm", 0.05), adg,
            rng=DeterministicRng(0), max_iters=80,
        )
        assert result.ok
        clone = adg.clone()
        changes = trim_unused_features(clone, [result.schedule])
        assert changes > 0
        # mm uses no sjoin; no PE should retain it afterwards.
        used = result.schedule.scope.required_ops()
        for pe in clone.pes():
            if pe.op_names != used:
                assert pe.op_names <= set(
                    op for s in [result.schedule]
                    for region in s.regions()
                    for op in region.dfg.required_ops()
                ) or pe.op_names
        validate_adg(clone, strict=False)


class TestObjective:
    def test_budget_enforced(self):
        objective = DseObjective(area_budget_mm2=1.0)
        objective.set_baseline({"k": 100.0})
        assert objective.score({"k": 50.0}, area_mm2=2.0,
                               power_mw=10.0) == float("-inf")

    def test_speedup_squared_over_area(self):
        objective = DseObjective(area_budget_mm2=100.0,
                                 power_budget_mw=1e9)
        objective.set_baseline({"k": 100.0})
        slow = objective.score({"k": 100.0}, 1.0, 1.0)
        fast = objective.score({"k": 50.0}, 1.0, 1.0)
        assert fast == pytest.approx(4.0 * slow)

    def test_smaller_is_better_at_equal_perf(self):
        objective = DseObjective(area_budget_mm2=100.0,
                                 power_budget_mw=1e9)
        objective.set_baseline({"k": 100.0})
        big = objective.score({"k": 100.0}, 2.0, 1.0)
        small = objective.score({"k": 100.0}, 1.0, 1.0)
        assert small > big

    def test_failed_kernel_scores_minus_inf(self):
        objective = DseObjective()
        objective.set_baseline({"k": 100.0})
        assert objective.score({}, 1.0, 1.0) == float("-inf")


class TestExplorer:
    @pytest.fixture(scope="class")
    def result(self):
        kernels = [make_kernel(name, 0.05) for name in ("mm", "join")]
        explorer = DesignSpaceExplorer(
            kernels, topologies.dse_initial(),
            rng=DeterministicRng(11), sched_iters=40,
        )
        return explorer.run(max_iters=8)

    def test_history_starts_with_initial(self, result):
        assert result.history[0].mutations == ["initial"]
        assert result.history[0].accepted

    def test_objective_never_decreases_among_accepted(self, result):
        best = float("-inf")
        for entry in result.history:
            if entry.accepted:
                assert entry.objective >= best - 1e-12
                best = entry.objective

    def test_best_adg_validates_and_compiles(self, result):
        validate_adg(result.best_adg, strict=False)
        from repro.compiler import compile_kernel

        compiled = compile_kernel(
            make_kernel("mm", 0.05), result.best_adg,
            rng=DeterministicRng(0), max_iters=80,
        )
        assert compiled.ok

    def test_area_saving_nonnegative(self, result):
        assert result.area_saving() >= -0.05

    def test_tiny_budget_never_scores(self):
        kernels = [make_kernel("pool", 0.05)]
        explorer = DesignSpaceExplorer(
            kernels, topologies.dse_initial(),
            rng=DeterministicRng(0), sched_iters=30,
            area_budget_mm2=1e-6,
        )
        outcome = explorer.run(max_iters=2)
        assert outcome.best_objective == float("-inf")
        assert all(
            entry.objective == float("-inf")
            for entry in outcome.history
        )

    def test_infeasible_initial_raises(self):
        # A kernel set the tiny CCA cannot host (fp GEMM needs fmul).
        kernels = [make_kernel("classifier", 0.05)]
        explorer = DesignSpaceExplorer(
            kernels, topologies.cca(),
            rng=DeterministicRng(0), sched_iters=30,
        )
        with pytest.raises(DseError):
            explorer.run(max_iters=2)
