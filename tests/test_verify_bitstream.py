"""Tests for the config round-trip checker (repro.verify.bitstream)."""

import pytest

from repro.adg import topologies
from repro.compiler.codegen import CommandKind, generate_control_program
from repro.hwgen.bitstream import encode_bitstream
from repro.scheduler import SpatialScheduler
from repro.verify import check_bitstream_roundtrip, check_control_program

from tests.test_scheduler import dot_scope


@pytest.fixture(scope="module")
def mapped():
    adg = topologies.softbrain()
    scheduler = SpatialScheduler(adg, max_iters=200)
    schedule, cost = scheduler.schedule(dot_scope(n=8, unroll=2))
    assert cost.is_legal
    return adg, schedule


def test_clean_roundtrip(mapped):
    adg, schedule = mapped
    report = check_bitstream_roundtrip(adg, schedule)
    assert report.ok, report.describe()


def test_corrupted_field_detected(mapped):
    adg, schedule = mapped
    bitstream = encode_bitstream(adg, schedule)
    victim = next(
        config for config in bitstream.configs.values()
        if config.fields.get("num_slots", (0, 0))[0] > 0
    )
    name = "slot00_opcode"
    value, width = victim.fields[name]
    victim.fields[name] = ((value + 1) % (1 << width), width)
    victim.pack()
    report = check_bitstream_roundtrip(adg, schedule, bitstream=bitstream)
    assert not report.ok
    assert "config.field-mismatch" in report.codes()


def test_corrupted_payload_detected(mapped):
    """Bit-flip the packed payload itself (not the field table)."""
    adg, schedule = mapped
    bitstream = encode_bitstream(adg, schedule)
    victim = next(
        config for config in bitstream.configs.values()
        if config.payload_bits > 0 and config.fields.get(
            "num_slots", (0, 0)
        )[0] > 0
    )
    victim.payload ^= 1 << (victim.payload_bits - 1)
    report = check_bitstream_roundtrip(adg, schedule, bitstream=bitstream)
    assert not report.ok
    assert "config.field-mismatch" in report.codes()


def test_missing_and_unknown_nodes(mapped):
    adg, schedule = mapped
    bitstream = encode_bitstream(adg, schedule)
    victim = sorted(bitstream.configs)[0]
    config = bitstream.configs.pop(victim)
    bitstream.configs["phantom_node"] = config
    report = check_bitstream_roundtrip(adg, schedule, bitstream=bitstream)
    codes = report.codes()
    assert "config.missing-node" in codes
    assert "config.unknown-node" in codes


def test_stale_bitstream_detected_after_schedule_change(mapped):
    """Re-placing an instruction invalidates the old encoding."""
    adg, schedule = mapped
    bitstream = encode_bitstream(adg, schedule)
    changed = schedule.clone()
    vertex = next(
        v for v in changed.vertices()
        if changed.node_of(v).kind.value == "instr"
    )
    current = changed.placement[vertex]
    target = next(
        pe.name for pe in adg.pes()
        if pe.name != current
        and changed.placement_legal(vertex, pe.name)
    )
    changed.place(vertex, target)
    report = check_bitstream_roundtrip(adg, changed, bitstream=bitstream)
    assert not report.ok


def test_control_program_clean(mapped):
    adg, schedule = mapped
    scope = schedule.scope
    report = check_control_program(scope, schedule)
    assert report.ok, report.describe()


def test_control_program_missing_stream(mapped):
    adg, schedule = mapped
    scope = schedule.scope
    program = generate_control_program(scope, schedule)
    victim = next(
        index for index, command in enumerate(program.commands)
        if command.kind is CommandKind.ISSUE_STREAM
    )
    del program.commands[victim]
    report = check_control_program(scope, schedule, program)
    assert "program.stream-count" in report.codes()


def test_control_program_wrong_memory(mapped):
    adg, schedule = mapped
    scope = schedule.scope
    program = generate_control_program(scope, schedule)
    command = next(
        c for c in program.commands
        if c.kind is CommandKind.ISSUE_STREAM
    )
    command.memory = "wrong_memory"
    report = check_control_program(scope, schedule, program)
    assert "program.memory-binding" in report.codes()


def test_control_program_missing_prologue_epilogue(mapped):
    adg, schedule = mapped
    scope = schedule.scope
    program = generate_control_program(scope, schedule)
    del program.commands[0]
    del program.commands[-1]
    report = check_control_program(scope, schedule, program)
    codes = report.codes()
    assert "program.prologue" in codes
    assert "program.epilogue" in codes
