"""Tests for the performance and power/area estimation models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adg import topologies
from repro.adg.components import ProcessingElement, Resourcing, Scheduling
from repro.compiler import compile_kernel
from repro.compiler.kernel import VariantParams
from repro.estimation import (
    AreaPowerModel,
    default_model,
    estimate_area_power,
    generate_dataset,
    synthesize_adg,
    synthesize_component,
)
from repro.estimation.perf_model import PerformanceModel
from repro.estimation.regression import (
    component_features,
    fit_regression,
    validation_error,
)
from repro.utils.rng import DeterministicRng
from repro.workloads import kernel as make_kernel


@pytest.fixture(scope="module")
def model():
    return default_model()


class TestSynthDb:
    def test_dataset_covers_all_types(self):
        dataset = generate_dataset(samples_per_type=20)
        assert set(dataset) >= {
            "ProcessingElement", "Switch", "Memory", "SyncElement",
            "DelayFifo", "ControlCore",
        }

    def test_synthesis_deterministic(self):
        pe = ProcessingElement(name="p", op_names={"add", "mul"})
        assert synthesize_component(pe, 3, 3) == synthesize_component(
            pe, 3, 3
        )

    def test_dynamic_costs_more_than_static(self):
        static_pe = ProcessingElement(
            name="s", op_names={"add"}, scheduling=Scheduling.STATIC
        )
        dynamic_pe = ProcessingElement(
            name="d", op_names={"add"}, scheduling=Scheduling.DYNAMIC
        )
        static_area, _ = synthesize_component(static_pe, noisy=False)
        dynamic_area, _ = synthesize_component(dynamic_pe, noisy=False)
        assert dynamic_area > static_area

    def test_shared_costs_more_than_dedicated(self):
        dedicated = ProcessingElement(
            name="d", op_names={"add"},
        )
        shared = ProcessingElement(
            name="s", op_names={"add"},
            resourcing=Resourcing.SHARED, max_instructions=8,
        )
        area_dedicated, _ = synthesize_component(dedicated, noisy=False)
        area_shared, _ = synthesize_component(shared, noisy=False)
        assert area_shared > area_dedicated

    def test_wider_datapath_costs_more(self):
        narrow = ProcessingElement(name="n", width=32,
                                   decomposable_to=32,
                                   op_names={"add"})
        wide = ProcessingElement(name="w", width=128,
                                 decomposable_to=128,
                                 op_names={"add"})
        assert synthesize_component(wide, noisy=False)[0] > \
            synthesize_component(narrow, noisy=False)[0]


class TestRegression:
    def test_validation_error_small(self, model):
        dataset = generate_dataset(samples_per_type=60)
        models = fit_regression(dataset)
        errors = validation_error(models, dataset)
        assert all(err < 0.20 for err in errors.values()), errors

    def test_estimate_below_synthesis_for_presets(self, model):
        """The Figure 15 property: estimates land a few percent below
        whole-fabric synthesis."""
        for name in ("softbrain", "spu", "triggered"):
            adg = topologies.PRESETS[name]()
            est_area, est_power = model.estimate(adg)
            syn_area, syn_power = synthesize_adg(adg)
            gap = (syn_area - est_area) / syn_area
            assert 0.0 < gap < 0.20, (name, gap)

    def test_feature_vector_shapes_stable(self):
        adg = topologies.spu()
        for component in adg.nodes():
            features = component_features(component, 2, 2)
            again = component_features(component, 2, 2)
            assert features == again

    def test_estimate_monotone_in_pe_count(self, model):
        small = topologies.build_mesh(2, 2)
        large = topologies.build_mesh(5, 5)
        assert model.estimate(large)[0] > model.estimate(small)[0]

    def test_breakdown_sums_to_estimate(self, model):
        adg = topologies.softbrain()
        total_area, total_power = model.estimate(adg)
        breakdown = model.breakdown(adg)
        assert sum(a for a, _ in breakdown.values()) == pytest.approx(
            total_area
        )
        assert sum(p for _, p in breakdown.values()) == pytest.approx(
            total_power
        )

    def test_convenience_wrapper(self):
        adg = topologies.cca()
        area, power = estimate_area_power(adg)
        assert area > 0 and power > 0


class TestPerformanceModel:
    def _timed(self, name, adg, scale=0.05):
        workload = make_kernel(name, scale)
        result = compile_kernel(
            workload, adg, rng=DeterministicRng(0), max_iters=100
        )
        assert result.ok
        return workload, result

    def test_estimate_without_schedule(self):
        workload = make_kernel("mm", 0.05)
        scope = workload.build(VariantParams(unroll=2))
        estimate = PerformanceModel().estimate(scope)
        assert estimate.cycles > 0
        assert estimate.ipc > 0

    def test_more_bandwidth_never_hurts(self):
        adg = topologies.softbrain()
        workload, result = self._timed("stencil2d", adg, scale=0.1)
        base = result.perf.cycles
        # Double every memory's width and re-estimate on same schedule.
        for memory in adg.memories():
            memory.width_bytes *= 2
            memory.width *= 2
        from repro.scheduler.router import RoutingGraph
        from repro.scheduler.timing import compute_timing

        timing = compute_timing(result.schedule, RoutingGraph(adg))
        boosted = PerformanceModel().estimate(
            result.scope, result.schedule, timing
        )
        assert boosted.cycles <= base + 1e-9

    def test_dependence_limits_serial_reductions(self):
        """A serial fp accumulator is dependence-limited (ratio 1/latency)
        unless parallel chains exist."""
        workload = make_kernel("classifier", 0.05)
        scope = workload.build(VariantParams(unroll=1))
        mac = scope.region(f"{workload.name}_mac")
        estimate = PerformanceModel().estimate(scope)
        perf = estimate.regions[mac.name]
        assert perf.dependence_ratio < 1.0
        mac.metadata["partial_sums"] = 8
        relaxed = PerformanceModel().estimate(scope)
        assert relaxed.regions[mac.name].dependence_ratio == 1.0

    def test_frequency_scales_cycles(self):
        workload = make_kernel("qr", 0.05)
        scope = workload.build(VariantParams())
        base = PerformanceModel().estimate(scope).cycles
        for region in scope.regions:
            region.frequency *= 2
        doubled = PerformanceModel().estimate(scope).cycles
        assert doubled > base * 1.5

    def test_scalarized_indirect_costs_more(self):
        workload = make_kernel("md", 0.05)
        fast_scope = workload.build(
            VariantParams(unroll=2, use_indirect=True)
        )
        slow_scope = workload.build(
            VariantParams(unroll=2, use_indirect=False)
        )
        model = PerformanceModel()
        assert model.estimate(slow_scope).cycles > model.estimate(
            fast_scope
        ).cycles

    @settings(max_examples=10, deadline=None)
    @given(unroll=st.sampled_from([1, 2, 4]))
    def test_estimates_always_positive(self, unroll):
        workload = make_kernel("ellpack", 0.05)
        scope = workload.build(VariantParams(unroll=unroll))
        estimate = PerformanceModel().estimate(scope)
        assert estimate.cycles >= 1.0
