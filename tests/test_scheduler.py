"""Tests for spatial scheduling: placement, routing, timing, repair."""

import pytest

from repro.adg import Adg, topologies
from repro.adg.components import (
    Direction,
    Memory,
    ProcessingElement,
    Resourcing,
    Scheduling,
    Switch,
    SyncElement,
)
from repro.ir import ConfigScope, Dfg, LinearStream, OffloadRegion
from repro.ir.stream import StreamDirection
from repro.scheduler import (
    RoutingGraph,
    Schedule,
    SpatialScheduler,
    evaluate_schedule,
    repair_schedule,
)
from repro.scheduler.repair import strip_invalid
from repro.scheduler.schedule import Vertex
from repro.scheduler.timing import compute_timing
from repro.utils.rng import DeterministicRng


def dot_scope(n=8, unroll=2, fp=False):
    mul_op = "fmul" if fp else "mul"
    add_op = "fadd" if fp else "add"
    dfg = Dfg("dot")
    a = dfg.add_input("a", lanes=unroll)
    b = dfg.add_input("b", lanes=unroll)
    products = [
        dfg.add_instr(mul_op, [(a, i), (b, i)]) for i in range(unroll)
    ]
    total = products[0]
    for product in products[1:]:
        total = dfg.add_instr(add_op, [total, product])
    acc = dfg.add_instr("acc" if not fp else "fadd", [total], reduction=True)
    dfg.add_output("c", acc)
    region = OffloadRegion(
        "dot", dfg,
        input_streams={
            "a": LinearStream("A", length=n),
            "b": LinearStream("B", length=n),
        },
        output_streams={
            "c": LinearStream("C", direction=StreamDirection.WRITE, length=1),
        },
    )
    return ConfigScope("s", regions=[region])


class TestRoutingGraph:
    def test_route_exists_in_mesh(self):
        adg = topologies.softbrain()
        routing = RoutingGraph(adg)
        path = routing.route("in0", "pe_0_0")
        assert path is not None
        assert adg.link(path[0]).src == "in0"
        assert adg.link(path[-1]).dst == "pe_0_0"

    def test_route_to_self_is_empty(self):
        adg = topologies.softbrain()
        routing = RoutingGraph(adg)
        assert routing.route("pe_0_0", "pe_0_0") == []

    def test_routes_do_not_pass_through_pes(self):
        adg = topologies.softbrain()
        routing = RoutingGraph(adg)
        for _ in range(3):
            path = routing.route("in0", "out0")
            assert path is not None
            interior = [adg.link(ln).src for ln in path[1:]]
            for name in interior:
                node = adg.node(name)
                assert node.KIND in ("switch", "delay")

    def test_unreachable_returns_none(self):
        adg = Adg()
        adg.add(Switch(name="sw0"))
        adg.add(Switch(name="sw1"))  # no link between them
        routing = RoutingGraph(adg)
        assert routing.route("sw0", "sw1") is None

    def test_congestion_diverts(self):
        # Two parallel 2-hop paths; loading one should push the second
        # value onto the other.
        adg = Adg()
        adg.add(Switch(name="entry"))
        adg.add(Switch(name="left"))
        adg.add(Switch(name="right"))
        adg.add(Switch(name="exit"))
        adg.connect("entry", "left")
        adg.connect("entry", "right")
        adg.connect("left", "exit")
        adg.connect("right", "exit")
        routing = RoutingGraph(adg)
        first = routing.route("entry", "exit", {}, value="v1")
        occupancy = {ln: {"v1"} for ln in first}
        second = routing.route("entry", "exit", occupancy, value="v2")
        assert set(first) != set(second)

    def test_multicast_reuses_links(self):
        adg = Adg()
        adg.add(Switch(name="entry"))
        adg.add(Switch(name="mid"))
        adg.add(Switch(name="exit"))
        adg.connect("entry", "mid")
        adg.connect("mid", "exit")
        routing = RoutingGraph(adg)
        first = routing.route("entry", "exit", {}, value="v")
        occupancy = {ln: {"v"} for ln in first}
        again = routing.route("entry", "exit", occupancy, value="v")
        assert again == first  # same value rides the same wires

    def test_path_latency_counts_flopped_switches(self):
        adg = topologies.softbrain()
        routing = RoutingGraph(adg)
        path = routing.route("in0", "pe_2_2")
        assert routing.path_latency(path) >= 1


class TestSchedule:
    def test_vertices_skip_constants(self):
        scope = dot_scope()
        scope.regions[0].dfg.add_const(5)
        sched = Schedule(scope, topologies.softbrain())
        kinds = {sched.node_of(v).kind.value for v in sched.vertices()}
        assert "const" not in kinds

    def test_candidates_respect_capability(self):
        adg = Adg()
        adg.add(ProcessingElement(name="ipe", op_names={"add"}))
        adg.add(ProcessingElement(name="fpe", op_names={"fmul", "fadd"}))
        scope = dot_scope(fp=True)
        sched = Schedule(scope, adg)
        fmul_vertex = next(
            v for v in sched.instruction_vertices()
            if sched.node_of(v).op == "fmul"
        )
        assert sched.candidates_for(fmul_vertex) == ["fpe"]

    def test_sjoin_needs_dynamic_pe(self):
        adg = Adg()
        adg.add(ProcessingElement(
            name="static_pe", op_names={"sjoin", "add"},
            scheduling=Scheduling.STATIC,
        ))
        adg.add(ProcessingElement(
            name="dyn_pe", op_names={"sjoin", "add"},
            scheduling=Scheduling.DYNAMIC,
        ))
        dfg = Dfg("j")
        a = dfg.add_input("a")
        b = dfg.add_input("b")
        sj = dfg.add_instr("sjoin", [a, b])
        dfg.add_output("o", sj)
        region = OffloadRegion(
            "j", dfg,
            input_streams={
                "a": LinearStream("A", length=4),
                "b": LinearStream("B", length=4),
            },
            output_streams={
                "o": LinearStream("O", direction=StreamDirection.WRITE,
                                  length=4),
            },
        )
        sched = Schedule(ConfigScope("s", regions=[region]), adg)
        vertex = Vertex("j", sj.node_id)
        assert sched.candidates_for(vertex) == ["dyn_pe"]

    def test_port_lane_capacity(self):
        adg = Adg()
        adg.add(SyncElement(name="narrow", width=64,
                            direction=Direction.INPUT))
        adg.add(SyncElement(name="wide", width=256,
                            direction=Direction.INPUT))
        scope = dot_scope(unroll=4)
        sched = Schedule(scope, adg)
        a_vertex = next(
            v for v in sched.port_vertices()
            if sched.node_of(v).name == "a"
        )
        assert sched.candidates_for(a_vertex) == ["wide"]

    def test_unplace_removes_routes(self):
        adg = topologies.softbrain()
        scheduler = SpatialScheduler(adg, max_iters=60)
        sched, cost = scheduler.schedule(dot_scope())
        assert cost.is_legal
        vertex = sched.instruction_vertices()[0]
        touching = len(sched.edges_of(vertex))
        routed_before = len(sched.routes)
        sched.unplace(vertex)
        assert vertex not in sched.placement
        assert len(sched.routes) <= routed_before - 1
        del touching

    def test_clone_independent(self):
        adg = topologies.softbrain()
        scheduler = SpatialScheduler(adg, max_iters=60)
        sched, _ = scheduler.schedule(dot_scope())
        twin = sched.clone()
        twin.placement.clear()
        assert sched.placement


class TestStochasticScheduler:
    @pytest.mark.parametrize(
        "preset", ["softbrain", "spu", "triggered", "revel", "dse_initial"]
    )
    def test_dot_product_schedules_legally(self, preset):
        adg = topologies.PRESETS[preset]()
        scheduler = SpatialScheduler(adg, max_iters=150)
        sched, cost = scheduler.schedule(dot_scope())
        assert cost.is_legal, cost
        assert sched.is_complete()

    def test_deterministic_given_seed(self):
        adg = topologies.softbrain()
        results = []
        for _ in range(2):
            scheduler = SpatialScheduler(
                adg, rng=DeterministicRng(42), max_iters=80
            )
            sched, cost = scheduler.schedule(dot_scope())
            results.append((cost.scalar(), sorted(
                (str(v), hw) for v, hw in sched.placement.items()
            )))
        assert results[0] == results[1]

    def test_streams_bound_to_capable_memory(self):
        adg = topologies.spu()  # banked indirect spad
        scheduler = SpatialScheduler(adg, max_iters=60)
        sched, cost = scheduler.schedule(dot_scope())
        for (region, port), memory_name in sched.stream_binding.items():
            assert adg.has_node(memory_name)

    def test_infeasible_capability_reported_illegal(self):
        # Integer dot product on a float-only fabric cannot map.
        adg = Adg()
        adg.add(Memory(name="dma0", width=512,
                       kind=__import__("repro.adg.components",
                                       fromlist=["MemoryKind"]).MemoryKind.DMA))
        adg.add(SyncElement(name="in0", width=256,
                            direction=Direction.INPUT))
        adg.add(SyncElement(name="out0", width=256,
                            direction=Direction.OUTPUT))
        adg.add(ProcessingElement(name="fpe", op_names={"fadd", "fmul"}))
        adg.add(Switch(name="sw0"))
        adg.connect("dma0", "in0")
        adg.connect("in0", "sw0")
        adg.connect("sw0", "fpe")
        adg.connect("fpe", "sw0")
        adg.connect("sw0", "out0")
        adg.connect("out0", "dma0")
        scheduler = SpatialScheduler(adg, max_iters=30)
        sched, cost = scheduler.schedule(dot_scope())
        assert not cost.is_legal
        assert cost.unplaced > 0

    def test_timing_assigns_delays_within_depth(self):
        adg = topologies.softbrain()
        scheduler = SpatialScheduler(adg, max_iters=100)
        sched, cost = scheduler.schedule(dot_scope(unroll=4))
        assert cost.is_legal
        timing = compute_timing(sched, scheduler.routing)
        assert timing.total_violations == 0
        depth = adg.pes()[0].delay_fifo_depth
        for delay in sched.input_delays.values():
            assert 0 <= delay <= depth


class TestRepair:
    def _legal_schedule(self, adg):
        scheduler = SpatialScheduler(adg, max_iters=120)
        sched, cost = scheduler.schedule(dot_scope())
        assert cost.is_legal
        return sched

    def test_strip_after_pe_removal(self):
        adg = topologies.softbrain()
        sched = self._legal_schedule(adg)
        used_pes = set(sched.pe_load())
        victim = sorted(used_pes)[0]
        edited = adg.clone()
        edited.remove(victim)
        removed = strip_invalid(sched, edited)
        assert removed > 0
        assert all(
            edited.has_node(hw) for hw in sched.placement.values()
        )

    def test_repair_restores_legality(self):
        adg = topologies.softbrain()
        sched = self._legal_schedule(adg)
        victim = sorted(set(sched.pe_load()))[0]
        edited = adg.clone()
        edited.remove(victim)
        repaired, cost = repair_schedule(
            sched, edited, rng=DeterministicRng(1), max_iters=150
        )
        assert cost.is_legal, cost

    def test_identity_edit_strips_nothing(self):
        adg = topologies.softbrain()
        sched = self._legal_schedule(adg)
        edited = adg.clone()
        assert strip_invalid(sched, edited) == 0
        repaired, cost = repair_schedule(
            sched, edited, rng=DeterministicRng(1), max_iters=40
        )
        assert cost.is_legal

    def test_strip_handles_capability_downgrade(self):
        adg = topologies.spu()
        scheduler = SpatialScheduler(adg, max_iters=100)
        sched, cost = scheduler.schedule(dot_scope())
        assert cost.is_legal
        edited = adg.clone()
        for pe in edited.pes():
            pe.op_names.discard("mul")
        removed = strip_invalid(sched, edited)
        assert removed > 0


class TestObjective:
    def test_legal_requires_everything_clean(self):
        from repro.scheduler.objective import ScheduleCost

        assert ScheduleCost().is_legal
        assert not ScheduleCost(unplaced=1).is_legal
        assert not ScheduleCost(overuse_link=1).is_legal
        assert not ScheduleCost(skew_violations=1).is_legal

    def test_scalar_ordering(self):
        from repro.scheduler.objective import ScheduleCost

        # Incompleteness dominates overuse dominates II.
        assert ScheduleCost(unplaced=1).scalar() > ScheduleCost(
            overuse_pe=5
        ).scalar()
        assert ScheduleCost(overuse_pe=1).scalar() > ScheduleCost(
            ii=5
        ).scalar()

    def test_evaluate_counts_shared_capacity(self):
        adg = Adg()
        adg.add(ProcessingElement(
            name="shared_pe", op_names={"add"},
            resourcing=Resourcing.SHARED,
            scheduling=Scheduling.DYNAMIC,
            max_instructions=4,
        ))
        dfg = Dfg("t")
        a = dfg.add_input("a")
        x = dfg.add_instr("add", [a, a])
        y = dfg.add_instr("add", [x, x])
        dfg.add_output("o", y)
        region = OffloadRegion(
            "t", dfg,
            input_streams={"a": LinearStream("A", length=4)},
            output_streams={
                "o": LinearStream("O", direction=StreamDirection.WRITE,
                                  length=4),
            },
        )
        sched = Schedule(ConfigScope("s", regions=[region]), adg)
        for vertex in sched.instruction_vertices():
            sched.place(vertex, "shared_pe")
        cost = evaluate_schedule(sched, RoutingGraph(adg))
        assert cost.overuse_pe == 0  # two instrs fit in four slots
