"""Client-hardening tests: typed wire errors, retry policy, circuit
breaker, per-op deadlines, the reconnect path, and the unknown-job
protocol edges."""

import json
import socket
import threading
import time

import pytest

from repro.errors import (
    CircuitOpenError,
    ProtocolError,
    ServerError,
    ServerTimeout,
    TransportError,
)
from repro.server import (
    BackgroundServer,
    JobSpec,
    ServerClient,
    decode_artifact,
    parse_address,
)
from repro.server.chaos import ChaosTransport
from repro.server.client import CircuitBreaker, RetryPolicy


# ---------------------------------------------------------------------
# Typed wire errors
# ---------------------------------------------------------------------
class TestTypedErrors:
    def test_parse_address_happy_paths(self):
        assert parse_address("1.2.3.4:99") == ("1.2.3.4", 99)
        assert parse_address("1.2.3.4") == ("1.2.3.4", 8753)
        assert parse_address(":99") == ("127.0.0.1", 99)
        assert parse_address("example.com:8080", default_port=1) \
            == ("example.com", 8080)

    def test_parse_address_rejects_non_numeric_port(self):
        with pytest.raises(ProtocolError, match="not an integer"):
            parse_address("host:abc")
        with pytest.raises(ProtocolError):
            parse_address("host:80x")

    def test_parse_address_rejects_out_of_range_port(self):
        with pytest.raises(ProtocolError, match="outside"):
            parse_address("host:0")
        with pytest.raises(ProtocolError, match="outside"):
            parse_address("host:70000")

    def test_typed_errors_stay_catchable_as_builtins(self):
        # Back-compat: ProtocolError is a ValueError, TransportError a
        # ConnectionError, and both are ServerError/DsagenError.
        with pytest.raises(ValueError):
            parse_address("host:abc")
        assert issubclass(ProtocolError, ServerError)
        assert issubclass(TransportError, ConnectionError)

    def test_decode_artifact_rejects_artifactless_record(self):
        with pytest.raises(ProtocolError, match="no artifact"):
            decode_artifact({"ok": False, "error": "boom"})

    def test_decode_artifact_rejects_garbage_payload(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_artifact({"artifact_b64": "!!!not base64!!!"})

    def test_decode_artifact_rejects_non_dict(self):
        with pytest.raises(ProtocolError):
            decode_artifact(["not", "a", "record"])


# ---------------------------------------------------------------------
# Retry policy + circuit breaker units
# ---------------------------------------------------------------------
class TestRetryPolicy:
    def test_seeded_jitter_is_deterministic(self):
        a = RetryPolicy(jitter_seed=7)
        b = RetryPolicy(jitter_seed=7)
        assert [a.delay(i) for i in range(6)] \
            == [b.delay(i) for i in range(6)]
        c = RetryPolicy(jitter_seed=8)
        assert [a.delay(i) for i in range(6)] \
            != [c.delay(i) for i in range(6)]

    def test_delays_bounded_by_cap_and_base(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.8,
                             jitter_seed=1)
        for attempt in range(10):
            delay = policy.delay(attempt)
            uncapped = min(0.8, 0.1 * 2 ** attempt)
            assert uncapped * 0.5 <= delay <= uncapped

    def test_zero_retries_allowed(self):
        assert RetryPolicy(retries=0).retries == 0


class TestCircuitBreaker:
    def _make(self, threshold=3, reset_after=10.0):
        clock = {"now": 100.0}
        breaker = CircuitBreaker(threshold=threshold,
                                 reset_after=reset_after,
                                 clock=lambda: clock["now"])
        return breaker, clock

    def test_opens_at_threshold_and_fails_fast(self):
        breaker, _ = self._make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        breaker.check()                    # still closed
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.check()
        assert breaker.opens == 1

    def test_half_open_probe_and_close_on_success(self):
        breaker, clock = self._make(threshold=1, reset_after=10.0)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.check()
        clock["now"] += 10.0
        assert breaker.state == "half-open"
        breaker.check()                    # probe allowed
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.failures == 0

    def test_failed_probe_reopens(self):
        breaker, clock = self._make(threshold=1, reset_after=10.0)
        breaker.record_failure()
        clock["now"] += 10.0
        assert breaker.state == "half-open"
        breaker.record_failure()           # the probe failed
        assert breaker.state == "open"
        assert breaker.opens == 2


# ---------------------------------------------------------------------
# Scripted fake server for transport-path tests
# ---------------------------------------------------------------------
def _scripted_server(behaviors):
    """A TCP listener that handles one connection per behavior:
    ``drop`` closes on accept, ``silent`` reads but never replies,
    ``ok`` replies with a JSON ack, ``garbled`` replies with non-JSON.
    Returns ``(listener, port, held)``; close the listener to stop."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(16)
    port = listener.getsockname()[1]
    held = []   # keeps 'silent' connections alive

    def run():
        for behavior in behaviors:
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            if behavior == "drop":
                conn.close()
                continue
            try:
                conn.makefile("rb").readline()
                if behavior == "ok":
                    conn.sendall(b'{"ok": true, "scripted": true}\n')
                elif behavior == "garbled":
                    conn.sendall(b"this is not json\n")
            except OSError:
                pass
            if behavior == "silent":
                held.append(conn)
            else:
                conn.close()

    threading.Thread(target=run, daemon=True).start()
    return listener, port, held


class TestRequestTransportPath:
    def test_reconnect_after_dropped_connection(self):
        """The original reconnect-once path: a connection the server
        drops on accept is retried on a fresh socket — same payload,
        same nonce — and succeeds."""
        listener, port, _ = _scripted_server(["drop", "ok"])
        try:
            client = ServerClient(
                "127.0.0.1", port, timeout=5.0,
                retry=RetryPolicy(retries=2, backoff_base=0.01,
                                  jitter_seed=0),
            )
            response = client.request({"op": "ping"})
            assert response["scripted"]
            assert client.transport.connects == 2
            assert client.transport_errors == 1
            client.close()
        finally:
            listener.close()

    def test_silent_server_raises_typed_timeout(self):
        listener, port, _ = _scripted_server(["silent"])
        try:
            client = ServerClient("127.0.0.1", port, timeout=0.2,
                                  retry=RetryPolicy(retries=0))
            with pytest.raises(ServerTimeout):
                client.request({"op": "ping"})
            client.close()
        finally:
            listener.close()

    def test_garbled_response_raises_protocol_error(self):
        listener, port, _ = _scripted_server(["garbled"])
        try:
            client = ServerClient("127.0.0.1", port, timeout=5.0,
                                  retry=RetryPolicy(retries=0))
            with pytest.raises(ProtocolError):
                client.request({"op": "ping"})
            client.close()
        finally:
            listener.close()

    def test_deadline_exhaustion_raises_server_timeout(self):
        listener, port, _ = _scripted_server(["drop"] * 50)
        try:
            client = ServerClient(
                "127.0.0.1", port, timeout=5.0,
                retry=RetryPolicy(retries=50, backoff_base=0.05,
                                  backoff_cap=0.1, jitter_seed=0),
                breaker=False,
            )
            start = time.monotonic()
            with pytest.raises(ServerTimeout, match="deadline"):
                client.request({"op": "ping"}, deadline=0.3)
            assert time.monotonic() - start < 2.0
            client.close()
        finally:
            listener.close()

    def test_exhausted_retries_raise_transport_error(self):
        listener, port, _ = _scripted_server(["drop"] * 3)
        try:
            client = ServerClient(
                "127.0.0.1", port, timeout=5.0,
                retry=RetryPolicy(retries=2, backoff_base=0.01,
                                  jitter_seed=0),
                breaker=False,
            )
            with pytest.raises(TransportError, match="3 attempt"):
                client.request({"op": "ping"})
            client.close()
        finally:
            listener.close()


# ---------------------------------------------------------------------
# Breaker integration: fail fast, then recover without intervention
# ---------------------------------------------------------------------
class TestBreakerIntegration:
    def test_breaker_opens_fails_fast_and_recovers(self, tmp_path):
        with BackgroundServer(str(tmp_path / "s"), workers=0) as bg:
            host, port = bg.address
            transport = ChaosTransport(
                host, port, fault_rate=0.0,
                plan={0: "disconnect_before",
                      1: "disconnect_before"},
            )
            client = ServerClient(
                host, port, transport=transport,
                retry=RetryPolicy(retries=0),
                breaker=CircuitBreaker(threshold=2, reset_after=0.2),
            )
            with pytest.raises(TransportError):
                client.request({"op": "ping"})
            with pytest.raises(TransportError):
                client.request({"op": "ping"})
            # Open: fails fast without touching the wire.
            ops_before = transport.ops
            start = time.monotonic()
            with pytest.raises(CircuitOpenError):
                client.request({"op": "ping"})
            assert transport.ops == ops_before
            assert time.monotonic() - start < 0.05
            # Cooldown elapses -> half-open probe succeeds -> closed.
            time.sleep(0.25)
            assert client.ping()
            assert client.breaker.state == "closed"
            client.close()


# ---------------------------------------------------------------------
# Protocol edges against a real server
# ---------------------------------------------------------------------
class TestProtocolEdges:
    def test_wait_and_result_on_unknown_job_id(self, tmp_path):
        with BackgroundServer(str(tmp_path / "s"), workers=0) as bg:
            with ServerClient(*bg.address) as client:
                missing = client.wait("job-404")
                assert not missing["ok"]
                assert "unknown job_id" in missing["error"]
                polled = client.result("job-404")
                assert not polled["ok"]
                assert "unknown job_id" in polled["error"]

    def test_run_deadline_on_slow_job(self, tmp_path):
        with BackgroundServer(str(tmp_path / "s"), workers=0) as bg:
            with ServerClient(*bg.address) as client:
                slow = JobSpec(kind="noop",
                               options={"duration": 2.0})
                with pytest.raises(ServerTimeout):
                    client.run(slow, deadline=0.3)

    def test_torn_frame_is_dropped_not_executed(self, tmp_path):
        """A request frame missing its newline must never execute."""
        with BackgroundServer(str(tmp_path / "s"), workers=0) as bg:
            host, port = bg.address
            payload = json.dumps({
                "op": "run",
                "job": JobSpec(kind="noop",
                               options={"tag": "torn"}).to_dict(),
            }).encode()
            sock = socket.create_connection((host, port), timeout=5)
            sock.sendall(payload)      # no trailing newline
            sock.close()
            with ServerClient(host, port) as client:
                for _ in range(100):
                    counters = client.stats()["counters"]
                    if counters.get("server_torn_frames"):
                        break
                    time.sleep(0.01)
                assert counters.get("server_torn_frames", 0) == 1
                assert counters.get("server_submits", 0) == 0
