"""Tests for hardware generation: config paths, bitstream, Verilog."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adg import Adg, Switch, topologies
from repro.compiler import compile_kernel
from repro.errors import HwGenError
from repro.hwgen import (
    emit_verilog,
    encode_bitstream,
    generate_config_paths,
    ideal_longest_path,
)
from repro.hwgen.bitstream import NodeConfig
from repro.hwgen.config_path import coverage, longest_path_length
from repro.utils.rng import DeterministicRng
from repro.workloads import kernel as make_kernel


@pytest.fixture(scope="module")
def compiled():
    adg = topologies.softbrain()
    result = compile_kernel(
        make_kernel("mm", 0.05), adg,
        rng=DeterministicRng(0), max_iters=100,
    )
    assert result.ok
    return adg, result


class TestConfigPaths:
    @pytest.mark.parametrize("preset", ["softbrain", "spu", "maeri", "cca"])
    def test_full_coverage(self, preset):
        adg = topologies.PRESETS[preset]()
        paths = generate_config_paths(adg, 3)
        assert not coverage(paths, adg)

    def test_paths_follow_links(self):
        adg = topologies.softbrain()
        link_set = {(ln.src, ln.dst) for ln in adg.links()}
        core = adg.control_core().name
        for path in generate_config_paths(adg, 3):
            previous = core
            for node in path:
                assert (previous, node) in link_set, (previous, node)
                previous = node

    def test_more_paths_not_longer(self):
        adg = topologies.softbrain()
        lengths = [
            longest_path_length(generate_config_paths(adg, count))
            for count in (2, 4, 8)
        ]
        assert lengths[0] >= lengths[-1]

    def test_ideal_bound(self):
        assert ideal_longest_path(40, 3) == 14
        assert ideal_longest_path(40, 40) == 1

    def test_respects_lower_bound(self):
        adg = topologies.softbrain()
        nodes = len(adg.node_names()) - 1
        for count in (3, 6):
            paths = generate_config_paths(adg, count)
            assert longest_path_length(paths) >= ideal_longest_path(
                nodes, count
            )

    def test_disconnected_raises(self):
        adg = Adg()
        adg.add(Switch(name="a"))
        adg.add(Switch(name="b"))  # unreachable
        with pytest.raises(HwGenError):
            generate_config_paths(adg, 2)

    @settings(max_examples=10, deadline=None)
    @given(paths=st.integers(min_value=1, max_value=12))
    def test_any_path_count_covers(self, paths):
        adg = topologies.build_mesh(2, 2)
        result = generate_config_paths(adg, paths)
        assert not coverage(result, adg)


class TestBitstream:
    def test_every_component_configured(self, compiled):
        adg, result = compiled
        stream = encode_bitstream(adg, result.schedule)
        assert set(stream.configs) == set(adg.node_names())
        assert stream.total_bits() > 0
        assert stream.words() > 0

    def test_switch_routes_consistent_with_schedule(self, compiled):
        adg, result = compiled
        stream = encode_bitstream(adg, result.schedule)
        # Every switch traversed by a route must carry at least one
        # non-disabled route entry.
        used_switches = set()
        for links in result.schedule.routes.values():
            for first, second in zip(links, links[1:]):
                middle = adg.link(first).dst
                if adg.node(middle).KIND == "switch":
                    used_switches.add(middle)
        for name in used_switches:
            config = stream.configs[name]
            in_count = len(adg.in_links(name))
            enabled = [
                value for key, (value, width) in config.fields.items()
                if key.startswith("route") and value < in_count
            ]
            assert enabled, name

    def test_pack_unpack_round_trip(self):
        config = NodeConfig(node="x", fields={
            "alpha": (5, 4), "beta": (1, 1), "gamma": (300, 10),
        })
        config.pack()
        assert config.unpack({"alpha": 4, "beta": 1, "gamma": 10}) == {
            "alpha": 5, "beta": 1, "gamma": 300,
        }

    def test_pack_rejects_overflow(self):
        config = NodeConfig(node="x", fields={"a": (16, 4)})
        with pytest.raises(HwGenError):
            config.pack()

    def test_mapped_pes_carry_opcodes(self, compiled):
        adg, result = compiled
        stream = encode_bitstream(adg, result.schedule)
        mapped = set(result.schedule.pe_load())
        for name in mapped:
            fields = stream.configs[name].fields
            opcodes = [
                value for key, (value, _w) in fields.items()
                if key.endswith("opcode")
            ]
            assert any(value > 0 for value in opcodes), name

    def test_static_pe_delays_encoded(self, compiled):
        adg, result = compiled
        stream = encode_bitstream(adg, result.schedule)
        delay_fields = [
            key
            for name in result.schedule.pe_load()
            for key in stream.configs[name].fields
            if "delay" in key
        ]
        assert delay_fields  # Softbrain is static: delays must appear


class TestVerilog:
    def test_emission_structure(self, compiled):
        adg, result = compiled
        text = emit_verilog(adg)
        assert text.startswith("// Generated")
        assert f"module {adg.name}" in text
        assert text.rstrip().endswith("endmodule")
        # One instance per component, one wire bundle per link.
        assert text.count("u_") >= len(adg.node_names())
        assert text.count("_valid,") + text.count("_valid)") >= len(
            adg.links()
        )

    def test_parameters_present(self):
        text = emit_verilog(topologies.spu())
        assert "dsa_pe_dyn_dedicated" in text
        assert "dsa_memory_indirect" in text
        assert ".BANKS(8)" in text

    def test_custom_name_sanitized(self):
        text = emit_verilog(topologies.cca(), design_name="my-design")
        assert "module my_design" in text
