"""DSE checkpoint/resume: killed runs continue to the same trajectory.

The explorer's rng never consumes state between generations (children
are spawned by ``(iteration, candidate)`` key), so a run restored from
a checkpoint replays the exact remaining trajectory. These tests pin
that equality in-process and through a real ``kill -9`` of the CLI.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.adg import topologies
from repro.dse.explorer import CHECKPOINT_VERSION, DesignSpaceExplorer
from repro.errors import DseError
from repro.utils.rng import DeterministicRng
from repro.workloads import kernel as make_kernel

SEED = 11
DSE_ITERS = 5
SCHED_ITERS = 15


def _make_explorer(seed=SEED):
    return DesignSpaceExplorer(
        [make_kernel("mm", 0.05)],
        topologies.dse_initial(),
        rng=DeterministicRng(seed),
        sched_iters=SCHED_ITERS,
        initial_sched_iters=SCHED_ITERS * 3,
    )


def _trajectory(result):
    return [
        (h.iteration, h.candidate, h.objective, h.accepted)
        for h in result.history
    ]


class TestCheckpointResume:
    def test_resumed_equals_uninterrupted(self, tmp_path):
        full = _make_explorer().run(max_iters=DSE_ITERS)

        path = str(tmp_path / "ck.json")
        _make_explorer().run(max_iters=2, checkpoint_path=path)
        assert os.path.exists(path)
        resumed = _make_explorer().run(
            max_iters=DSE_ITERS, checkpoint_path=path, resume=True,
        )

        assert resumed.best_objective == full.best_objective
        assert _trajectory(resumed) == _trajectory(full)
        assert resumed.final_area == full.final_area

    def test_checkpoint_file_shape(self, tmp_path):
        path = str(tmp_path / "ck.json")
        _make_explorer().run(
            max_iters=2, checkpoint_path=path, checkpoint_every=1,
        )
        with open(path) as handle:
            record = json.load(handle)
        assert record["version"] == CHECKPOINT_VERSION
        assert record["seed"] == repr(DeterministicRng(SEED).seed)
        assert record["iteration"] >= 1
        assert record["history"]
        assert record["baseline_cycles"]
        assert record["state_blob"]
        # No stale temp file survives the atomic rename.
        assert not os.path.exists(path + ".tmp")

    def test_resume_with_missing_checkpoint_starts_fresh(
        self, tmp_path
    ):
        path = str(tmp_path / "never-written.json")
        result = _make_explorer().run(
            max_iters=2, checkpoint_path=path, resume=True,
        )
        assert result.best_adg is not None
        assert os.path.exists(path)  # final checkpoint written anyway

    def test_resume_with_wrong_seed_refuses(self, tmp_path):
        path = str(tmp_path / "ck.json")
        _make_explorer(seed=SEED).run(max_iters=2, checkpoint_path=path)
        with pytest.raises(DseError):
            _make_explorer(seed=SEED + 1).run(
                max_iters=DSE_ITERS, checkpoint_path=path, resume=True,
            )

    def test_resume_of_finished_run_is_idempotent(self, tmp_path):
        path = str(tmp_path / "ck.json")
        first = _make_explorer().run(
            max_iters=DSE_ITERS, checkpoint_path=path,
        )
        again = _make_explorer().run(
            max_iters=DSE_ITERS, checkpoint_path=path, resume=True,
        )
        assert again.best_objective == first.best_objective
        assert _trajectory(again) == _trajectory(first)


class TestKillNineResume:
    def test_kill_9_mid_run_resumes_to_same_objective(self, tmp_path):
        """SIGKILL the CLI mid-exploration; the resumed run must land on
        the uninterrupted trajectory's final objective."""
        path = str(tmp_path / "ck.json")
        cli = [
            sys.executable, "-m", "repro", "dse",
            "--workloads", "mm", "--initial", "dse_initial",
            "--iters", str(DSE_ITERS), "--scale", "0.05",
            "--sched-iters", str(SCHED_ITERS), "--seed", str(SEED),
            "--checkpoint", path,
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        # The uninterrupted reference, constructed exactly as cmd_dse
        # constructs its explorer (default initial budget).
        expected_cli = DesignSpaceExplorer(
            [make_kernel("mm", 0.05)],
            topologies.dse_initial(),
            rng=DeterministicRng(SEED),
            sched_iters=SCHED_ITERS,
        ).run(max_iters=DSE_ITERS)

        proc = subprocess.Popen(
            cli, env=env, cwd=os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        # Kill as soon as the first checkpoint lands (mid-run); if the
        # run finishes first the test still exercises resume-at-end.
        deadline = time.time() + 120
        while time.time() < deadline:
            if os.path.exists(path) or proc.poll() is not None:
                break
            time.sleep(0.05)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            assert proc.returncode != 0
        assert os.path.exists(path), "no checkpoint before the kill"

        resume = subprocess.run(
            cli + ["--resume"], env=env,
            cwd=os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            timeout=300,
        )
        assert resume.returncode == 0, resume.stdout.decode()

        with open(path) as handle:
            final = json.load(handle)
        assert final["best_objective"] == pytest.approx(
            expected_cli.best_objective, rel=0, abs=0,
        )
        assert len(final["history"]) == len(expected_cli.history)
