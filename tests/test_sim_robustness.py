"""Robustness/failure-injection tests for the cycle-level simulator:
tiny buffers, starved bandwidth, and hardware feature toggles must slow
execution down, never corrupt results."""

import copy
import math


from repro.adg import topologies
from repro.compiler import compile_kernel
from repro.sim import CycleSimulator
from repro.utils.rng import DeterministicRng
from repro.workloads import kernel as make_kernel


def run_with(adg, name="ellpack", scale=0.05, config_cycles=None):
    workload = make_kernel(name, scale)
    result = compile_kernel(
        workload, adg, rng=DeterministicRng(0), max_iters=120
    )
    assert result.ok, name
    memory = workload.make_memory()
    result.scope.bind_constants(memory)
    reference = copy.deepcopy(memory)
    sim = CycleSimulator(
        adg, result.scope, result.schedule, result.program,
        config_cycles=config_cycles,
    ).run(memory)
    workload.reference(reference)
    for array in memory:
        assert all(
            math.isclose(float(a), float(b), rel_tol=1e-9, abs_tol=1e-9)
            for a, b in zip(memory[array], reference[array])
        ), array
    return sim


class TestBufferPressure:
    def test_tiny_sync_fifos_stay_correct(self):
        adg = topologies.softbrain()
        for port in adg.sync_elements():
            port.depth = 1
        sim = run_with(adg)
        assert sim.cycles > 0

    def test_shallow_fifos_never_faster(self):
        deep = topologies.softbrain()
        shallow = topologies.softbrain()
        for port in shallow.sync_elements():
            port.depth = 1
        cycles_deep = run_with(deep, "stencil2d", 0.1).cycles
        cycles_shallow = run_with(shallow, "stencil2d", 0.1).cycles
        assert cycles_shallow >= cycles_deep

    def test_starved_bandwidth_slows_everything(self):
        normal = topologies.softbrain()
        starved = topologies.softbrain()
        for memory in starved.memories():
            memory.width_bytes = 8
            memory.width = 64
        cycles_normal = run_with(normal, "mm", 0.1).cycles
        cycles_starved = run_with(starved, "mm", 0.1).cycles
        assert cycles_starved > cycles_normal

    def test_single_bank_serializes_indirect(self):
        wide = topologies.spu()
        narrow = topologies.spu()
        narrow.scratchpad().banks = 1
        narrow.scratchpad().atomic_update = False
        # Compile for each hardware separately (the compiler adapts:
        # without atomic banks, histogram falls back).
        cycles_wide = run_with(wide, "histogram", 0.05).cycles
        cycles_narrow = run_with(narrow, "histogram", 0.05).cycles
        assert cycles_wide < cycles_narrow

    def test_config_time_dominates_tiny_kernels(self):
        adg = topologies.softbrain()
        quick = run_with(adg, "pool", 0.05, config_cycles=1).cycles
        slow = run_with(adg, "pool", 0.05, config_cycles=10_000).cycles
        assert slow > 10_000
        assert quick < 1_000


class TestFeatureToggles:
    def test_coalescing_speeds_up_fft(self):
        plain = topologies.softbrain()
        fast = topologies.softbrain()
        for memory in fast.memories():
            memory.coalescing = True
        cycles_plain = run_with(plain, "fft", 0.05).cycles
        cycles_fast = run_with(fast, "fft", 0.05).cycles
        assert cycles_fast < cycles_plain

    def test_coalescing_neutral_for_unit_stride(self):
        plain = topologies.softbrain()
        fast = topologies.softbrain()
        for memory in fast.memories():
            memory.coalescing = True
        cycles_plain = run_with(plain, "pool", 0.05).cycles
        cycles_fast = run_with(fast, "pool", 0.05).cycles
        assert abs(cycles_fast - cycles_plain) <= cycles_plain * 0.1
