"""Tests for the architecture description graph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adg import (
    Adg,
    ControlCore,
    Direction,
    Memory,
    MemoryKind,
    ProcessingElement,
    Resourcing,
    Scheduling,
    Switch,
    SyncElement,
    adg_from_dict,
    adg_to_dict,
    topologies,
    validate_adg,
)
from repro.adg.components import DelayFifo
from repro.errors import AdgError, AdgValidationError


def tiny_fabric():
    """memory -> in port -> switch -> pe -> switch -> out port -> memory."""
    adg = Adg("tiny")
    mem = adg.add(Memory(name="spad0", width=512))
    inp = adg.add(SyncElement(name="in0", direction=Direction.INPUT))
    outp = adg.add(SyncElement(name="out0", direction=Direction.OUTPUT))
    sw_a = adg.add(Switch(name="sw0"))
    sw_b = adg.add(Switch(name="sw1"))
    pe = adg.add(ProcessingElement(name="pe0", op_names={"add", "mul"}))
    core = adg.add(ControlCore(name="core0"))
    adg.connect(mem, inp)
    adg.connect(inp, sw_a)
    adg.connect(sw_a, pe)
    adg.connect(pe, sw_b)
    adg.connect(sw_b, outp)
    adg.connect(outp, mem)
    adg.connect(core, sw_a)
    return adg


class TestGraphEditing:
    def test_add_and_lookup(self):
        adg = tiny_fabric()
        assert adg.node("pe0").KIND == "pe"
        assert "pe0" in adg
        assert len(adg) == 7

    def test_duplicate_name_rejected(self):
        adg = tiny_fabric()
        with pytest.raises(AdgError):
            adg.add(Switch(name="sw0"))

    def test_remove_node_removes_links(self):
        adg = tiny_fabric()
        before = len(adg.links())
        adg.remove("pe0")
        assert "pe0" not in adg
        assert len(adg.links()) == before - 2

    def test_missing_node_raises(self):
        adg = tiny_fabric()
        with pytest.raises(AdgError):
            adg.node("ghost")
        with pytest.raises(AdgError):
            adg.remove("ghost")

    def test_self_link_rejected(self):
        adg = tiny_fabric()
        with pytest.raises(AdgError):
            adg.connect("sw0", "sw0")

    def test_link_to_missing_node_rejected(self):
        adg = tiny_fabric()
        with pytest.raises(AdgError):
            adg.connect("sw0", "ghost")

    def test_parallel_links_allowed(self):
        adg = tiny_fabric()
        adg.connect("sw0", "pe0")
        assert len(adg.links_between("sw0", "pe0")) == 2

    def test_default_link_width_is_min_of_endpoints(self):
        adg = Adg()
        adg.add(Switch(name="wide", width=256))
        adg.add(Switch(name="narrow", width=64))
        link = adg.connect("wide", "narrow")
        assert link.width == 64

    def test_remove_link(self):
        adg = tiny_fabric()
        link = adg.links_between("sw0", "pe0")[0]
        adg.remove_link(link.link_id)
        assert not adg.links_between("sw0", "pe0")
        with pytest.raises(AdgError):
            adg.remove_link(link.link_id)

    def test_successors_predecessors(self):
        adg = tiny_fabric()
        assert adg.successors("sw0") == ["pe0"]
        assert set(adg.predecessors("sw0")) == {"core0", "in0"}

    def test_clone_is_deep(self):
        adg = tiny_fabric()
        twin = adg.clone()
        twin.node("pe0").op_names.add("sub")
        assert "sub" not in adg.node("pe0").op_names

    def test_new_name_avoids_collisions(self):
        adg = tiny_fabric()
        name = adg.new_name("pe")
        assert name not in adg
        adg.add(ProcessingElement(name=name))
        assert adg.new_name("pe") != name

    def test_typed_accessors(self):
        adg = tiny_fabric()
        assert len(adg.pes()) == 1
        assert len(adg.switches()) == 2
        assert len(adg.input_ports()) == 1
        assert len(adg.output_ports()) == 1
        assert adg.control_core().name == "core0"
        assert adg.scratchpad().name == "spad0"
        assert adg.dma() is None


class TestComponentChecks:
    def test_non_power_of_two_width_rejected(self):
        with pytest.raises(AdgError):
            Adg().add(Switch(name="sw", width=48))

    def test_dedicated_pe_single_instruction(self):
        pe = ProcessingElement(
            name="pe", resourcing=Resourcing.DEDICATED, max_instructions=4
        )
        with pytest.raises(AdgError):
            pe.check()

    def test_shared_pe_needs_slots(self):
        pe = ProcessingElement(
            name="pe", resourcing=Resourcing.SHARED, max_instructions=1
        )
        with pytest.raises(AdgError):
            pe.check()

    def test_unknown_opcode_rejected(self):
        pe = ProcessingElement(name="pe", op_names={"frobnicate"})
        with pytest.raises(AdgError):
            pe.check()

    def test_atomic_requires_indirect(self):
        mem = Memory(name="m", width=512, atomic_update=True, indirect=False)
        with pytest.raises(AdgError):
            mem.check()

    def test_memory_banks_power_of_two(self):
        mem = Memory(name="m", width=512, banks=3)
        with pytest.raises(AdgError):
            mem.check()

    def test_pe_decomposable_support(self):
        pe = ProcessingElement(
            name="pe", width=64, decomposable_to=16, op_names={"add", "shl"}
        )
        assert pe.supports_op("add", 16)
        assert not pe.supports_op("add", 8)     # below decomposable_to
        assert not pe.supports_op("shl", 16)    # opcode not decomposable
        assert not pe.supports_op("add", 128)   # wider than datapath
        assert pe.lanes == 4

    def test_sync_element_lanes(self):
        port = SyncElement(name="p", width=256)
        assert port.lanes64 == 4

    def test_delay_fifo_depth_check(self):
        with pytest.raises(AdgError):
            DelayFifo(name="d", depth=0).check()

    def test_clone_renames(self):
        pe = ProcessingElement(name="pe0")
        twin = pe.clone("pe9")
        assert twin.name == "pe9"
        assert pe.name == "pe0"


class TestValidation:
    def test_tiny_fabric_valid(self):
        assert validate_adg(tiny_fabric(), strict=True) == []

    def test_memory_to_pe_bus_rejected(self):
        adg = tiny_fabric()
        adg.connect("spad0", "pe0", 64)
        with pytest.raises(AdgValidationError):
            validate_adg(adg)

    def test_input_port_fed_by_pe_rejected(self):
        adg = tiny_fabric()
        adg.connect("pe0", "in0")
        with pytest.raises(AdgValidationError):
            validate_adg(adg)

    def test_output_port_to_switch_rejected(self):
        adg = tiny_fabric()
        adg.connect("out0", "sw0")
        with pytest.raises(AdgValidationError):
            validate_adg(adg)

    def test_two_control_cores_rejected(self):
        adg = tiny_fabric()
        adg.add(ControlCore(name="core1"))
        with pytest.raises(AdgValidationError):
            validate_adg(adg)

    def test_unreachable_pe_warns(self):
        adg = tiny_fabric()
        adg.add(ProcessingElement(name="orphan"))
        with pytest.raises(AdgValidationError):
            validate_adg(adg, strict=True)
        warnings = validate_adg(adg, strict=False)
        assert any("orphan" in w for w in warnings)

    def test_core_without_fabric_link_rejected(self):
        adg = tiny_fabric()
        adg.remove("core0")
        adg.add(ControlCore(name="core0"))  # no link into fabric
        with pytest.raises(AdgValidationError):
            validate_adg(adg, strict=False)

    def test_overwide_link_rejected(self):
        adg = tiny_fabric()
        adg.connect("sw0", "pe0", width=256)
        with pytest.raises(AdgValidationError):
            validate_adg(adg)


class TestPresets:
    @pytest.mark.parametrize("name", sorted(topologies.PRESETS))
    def test_preset_validates(self, name):
        adg = topologies.PRESETS[name]()
        assert validate_adg(adg, strict=True) == []

    def test_softbrain_is_static_dedicated(self):
        adg = topologies.softbrain()
        assert all(not pe.is_dynamic for pe in adg.pes())
        assert all(not pe.is_shared for pe in adg.pes())
        assert adg.scratchpad().banks == 1

    def test_triggered_is_dynamic_shared(self):
        adg = topologies.triggered()
        assert all(pe.is_dynamic and pe.is_shared for pe in adg.pes())

    def test_spu_has_indirect_banked_memory(self):
        adg = topologies.spu()
        spad = adg.scratchpad()
        assert spad.indirect and spad.atomic_update and spad.banks == 8

    def test_revel_mixes_execution_models(self):
        adg = topologies.revel()
        models = {pe.scheduling for pe in adg.pes()}
        assert models == {Scheduling.STATIC, Scheduling.DYNAMIC}

    def test_maeri_has_tree_shape(self):
        adg = topologies.maeri(leaves=8)
        leaf_pes = [pe for pe in adg.pes() if pe.name.startswith("leaf")]
        reducers = [pe for pe in adg.pes() if pe.name.startswith("red_")]
        assert len(leaf_pes) == 8
        assert len(reducers) == 7  # binary reduction of 8 leaves

    def test_tree_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            topologies.build_tree(6)

    def test_dse_initial_has_full_capability(self):
        adg = topologies.dse_initial()
        features = adg.feature_set()
        assert features.dynamic and features.indirect
        assert features.stream_join and features.decomposable
        assert len(adg.pes()) == 20  # 5x4

    def test_mesh_dimensions(self):
        adg = topologies.build_mesh(2, 3)
        assert len(adg.pes()) == 6
        assert len(adg.switches()) == 12  # (2+1)*(3+1)


class TestFeatureSet:
    def test_softbrain_features(self):
        features = topologies.softbrain().feature_set()
        assert not features.dynamic
        assert not features.indirect
        assert features.supports_op("fadd")
        assert features.total_pes == 20  # the 5x4 Softbrain unit

    def test_without_disables(self):
        features = topologies.spu().feature_set()
        assert features.dynamic
        downgraded = features.without("dynamic", "indirect")
        assert not downgraded.dynamic and not downgraded.indirect
        assert downgraded.stream_join == features.stream_join

    def test_without_unknown_raises(self):
        with pytest.raises(AttributeError):
            topologies.spu().feature_set().without("warpdrive")


class TestSerialization:
    @pytest.mark.parametrize("name", sorted(topologies.PRESETS))
    def test_round_trip_preserves_everything(self, name):
        adg = topologies.PRESETS[name]()
        clone = adg_from_dict(adg_to_dict(adg))
        assert adg_to_dict(clone) == adg_to_dict(adg)

    def test_round_trip_preserves_enums_and_sets(self):
        adg = topologies.spu()
        clone = adg_from_dict(adg_to_dict(adg))
        pe = clone.pes()[0]
        assert pe.scheduling is Scheduling.DYNAMIC
        assert isinstance(pe.op_names, set)
        assert clone.scratchpad().kind is MemoryKind.SPAD

    def test_unknown_kind_rejected(self):
        with pytest.raises(AdgError):
            adg_from_dict({"nodes": [{"type": "alien", "name": "x"}]})

    def test_unknown_field_rejected(self):
        with pytest.raises(AdgError):
            adg_from_dict(
                {"nodes": [{"type": "switch", "name": "s", "bogus": 1}]}
            )

    def test_save_load_file(self, tmp_path):
        from repro.adg import load_adg, save_adg

        path = tmp_path / "adg.json"
        adg = tiny_fabric()
        save_adg(adg, path)
        assert load_adg(path).stats() == adg.stats()

    @settings(max_examples=20)
    @given(
        rows=st.integers(min_value=1, max_value=3),
        cols=st.integers(min_value=1, max_value=3),
    )
    def test_any_mesh_validates_and_round_trips(self, rows, cols):
        adg = topologies.build_mesh(rows, cols)
        assert validate_adg(adg, strict=True) == []
        assert adg_from_dict(adg_to_dict(adg)).stats() == adg.stats()


class TestApproximationPresets:
    """Section III-C: approximating Plasticine and TABLA inside the
    design space."""

    def test_plasticine_structure(self):
        adg = topologies.plasticine()
        assert validate_adg(adg, strict=True) == []
        # Multiple PMUs (banked scratchpads) plus the DMA interface.
        assert len(adg.memories()) == 3
        assert all(not pe.is_dynamic for pe in adg.pes())
        assert all(not pe.is_shared for pe in adg.pes())

    def test_tabla_is_static_temporal(self):
        adg = topologies.tabla()
        assert validate_adg(adg, strict=True) == []
        assert all(
            pe.is_shared and not pe.is_dynamic for pe in adg.pes()
        )

    def test_plasticine_runs_dense_kernel(self):
        from repro.compiler import compile_kernel
        from repro.utils.rng import DeterministicRng
        from repro.workloads import kernel as make_kernel

        result = compile_kernel(
            make_kernel("pool", 0.05), topologies.plasticine(),
            rng=DeterministicRng(0), max_iters=200,
        )
        assert result.ok

    def test_tabla_runs_classifier(self):
        from repro.compiler import compile_kernel
        from repro.utils.rng import DeterministicRng
        from repro.workloads import kernel as make_kernel

        result = compile_kernel(
            make_kernel("classifier", 0.05), topologies.tabla(),
            rng=DeterministicRng(0), max_iters=200,
        )
        assert result.ok
