"""Tests for the dataflow graph (repro.ir.dfg)."""

import pytest

from repro.errors import IrError
from repro.ir.dfg import Dfg, Operand


def simple_dfg():
    dfg = Dfg("t")
    a = dfg.add_input("a", lanes=2)
    b = dfg.add_input("b")
    mul = dfg.add_instr("mul", [(a, 0), b])
    add = dfg.add_instr("add", [(a, 1), mul])
    dfg.add_output("out", add)
    return dfg, (a, b, mul, add)


class TestConstruction:
    def test_counts(self):
        dfg, _ = simple_dfg()
        assert len(dfg.inputs()) == 2
        assert len(dfg.instructions()) == 2
        assert len(dfg.outputs()) == 1
        assert len(dfg) == 5

    def test_operand_forms(self):
        dfg = Dfg()
        a = dfg.add_input("a")
        b = dfg.add_input("b")
        # node, id, Operand, (node, lane) all accepted
        dfg.add_instr("add", [a, b.node_id])
        dfg.add_instr("add", [Operand(a.node_id), (b, 0)])

    def test_bad_operand_rejected(self):
        dfg = Dfg()
        dfg.add_input("a")
        with pytest.raises(IrError):
            dfg.add_instr("abs", ["nonsense"])

    def test_unknown_node_reference_rejected(self):
        dfg = Dfg()
        with pytest.raises(IrError):
            dfg.add_instr("abs", [99])

    def test_unknown_opcode_rejected(self):
        dfg = Dfg()
        a = dfg.add_input("a")
        with pytest.raises(IrError):
            dfg.add_instr("warp", [a])

    def test_arity_enforced(self):
        dfg = Dfg()
        a = dfg.add_input("a")
        with pytest.raises(IrError):
            dfg.add_instr("add", [a])

    def test_reduction_takes_one_less_operand(self):
        dfg = Dfg()
        a = dfg.add_input("a")
        acc = dfg.add_instr("acc", [a], reduction=True)
        assert acc.reduction
        with pytest.raises(IrError):
            dfg.add_instr("acc", [a, a], reduction=True)

    def test_output_needs_operand(self):
        dfg = Dfg()
        with pytest.raises(IrError):
            dfg.add_output("o", [])


class TestAnalysis:
    def test_topological_order_respects_deps(self):
        dfg, (a, b, mul, add) = simple_dfg()
        order = dfg.topological_order()
        assert order.index(mul.node_id) < order.index(add.node_id)
        assert order.index(a.node_id) < order.index(mul.node_id)

    def test_duplicate_operand_edges_handled(self):
        dfg = Dfg()
        a = dfg.add_input("a")
        sq = dfg.add_instr("mul", [a, a])
        dfg.add_output("o", sq)
        assert len(dfg.topological_order()) == 3

    def test_users_of(self):
        dfg, (a, b, mul, add) = simple_dfg()
        users = dfg.users_of(a.node_id)
        assert {u.node_id for u in users} == {mul.node_id, add.node_id}

    def test_edges_include_predicates(self):
        dfg = Dfg()
        a = dfg.add_input("a")
        p = dfg.add_instr("cmp_gt", [a, a])
        guarded = dfg.add_instr("abs", [a], predicate=p)
        edge_kinds = [
            idx for src, dst, idx, lane in dfg.edges()
            if dst == guarded.node_id
        ]
        assert -1 in edge_kinds

    def test_opcode_histogram(self):
        dfg, _ = simple_dfg()
        assert dfg.opcode_histogram() == {"mul": 1, "add": 1}
        assert dfg.required_ops() == {"mul", "add"}

    def test_longest_path_latency(self):
        dfg, _ = simple_dfg()
        # mul (3) -> add (1)
        assert dfg.longest_path_latency() == 4

    def test_clone_independent(self):
        dfg, _ = simple_dfg()
        twin = dfg.clone()
        twin.add_input("extra")
        assert len(twin) == len(dfg) + 1


class TestValidation:
    def test_valid_graph_passes(self):
        dfg, _ = simple_dfg()
        dfg.validate()

    def test_lane_overflow_rejected(self):
        dfg = Dfg()
        a = dfg.add_input("a", lanes=2)
        dfg.add_instr("abs", [(a, 5)])
        with pytest.raises(IrError):
            dfg.validate()

    def test_instr_lane_must_be_zero(self):
        dfg = Dfg()
        a = dfg.add_input("a")
        m = dfg.add_instr("abs", [a])
        dfg.add_instr("abs", [(m, 1)])
        with pytest.raises(IrError):
            dfg.validate()

    def test_consuming_output_rejected(self):
        dfg = Dfg()
        a = dfg.add_input("a")
        out = dfg.add_output("o", a)
        dfg.add_instr("abs", [out])
        with pytest.raises(IrError):
            dfg.validate()

    def test_unnamed_output_rejected(self):
        dfg = Dfg()
        a = dfg.add_input("a")
        dfg.add_output("", a)
        with pytest.raises(IrError):
            dfg.validate()
