"""Shared engine-parity helpers.

Every replay engine must produce a bit-identical :class:`SimResult` to
the ``stepped`` oracle; this module holds the one assertion both the
engine-equivalence tests and the batched-engine tests (and the batched
throughput benchmark) pin against. Kept out of the ``test_*`` namespace
so pytest does not collect it as a test file.
"""

import copy

from repro.sim import SIM_ENGINES, simulate
from repro.utils.telemetry import Telemetry

#: The single-cycle engine every other engine is pinned against.
ORACLE = "stepped"


def sim_fields(result):
    """The :class:`SimResult` fields that must match across engines."""
    return (result.cycles, result.region_cycles, result.memory_busy,
            result.instances, result.config_cycles)


def run_all_engines(adg, compiled, workload, engines=SIM_ENGINES):
    """Simulate ``compiled`` once per engine on fresh memory.

    Returns ``({engine: SimResult}, {engine: Telemetry})``.
    """
    results = {}
    telemetries = {}
    for engine in engines:
        memory = workload.make_memory()
        scope_copy = copy.deepcopy(compiled)
        scope_copy.scope.bind_constants(memory)
        telemetries[engine] = Telemetry()
        results[engine] = simulate(
            adg, scope_copy, memory,
            engine=engine, telemetry=telemetries[engine],
        )
    return results, telemetries


def assert_engine_parity(results, oracle=ORACLE):
    """Assert every engine's outcome is bit-identical to the oracle's.

    Values are :class:`SimResult` instances or stall-report strings
    (for cases that legitimately deadlock, parity means the same error
    text at the same cycle).
    """
    def normalize(value):
        return value if isinstance(value, str) else sim_fields(value)

    expected = normalize(results[oracle])
    for engine, outcome in results.items():
        assert normalize(outcome) == expected, (
            f"engine {engine!r} diverges from the {oracle!r} oracle: "
            f"{normalize(outcome)!r} != {expected!r}"
        )
