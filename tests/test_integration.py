"""End-to-end integration tests: C/workload -> compile -> schedule ->
bitstream -> cycle simulation, across target accelerators."""

import copy
import math

import pytest

from repro.adg import adg_from_dict, adg_to_dict, topologies
from repro.baselines.cpu import cpu_cycles
from repro.compiler import compile_kernel
from repro.frontend import compile_c
from repro.hwgen import emit_verilog, encode_bitstream, generate_config_paths
from repro.hwgen.config_path import coverage
from repro.sim import simulate
from repro.utils.rng import DeterministicRng
from repro.workloads import kernel as make_kernel


def full_flow(workload, adg, max_iters=150, seed=0):
    """compile -> simulate -> verify -> generate hardware artifacts."""
    result = compile_kernel(
        workload, adg, rng=DeterministicRng(seed), max_iters=max_iters
    )
    assert result.ok, (workload.name, adg.name, result.rejected[:1])
    memory = workload.make_memory()
    result.scope.bind_constants(memory)
    reference = copy.deepcopy(memory)
    sim = simulate(adg, result, memory)
    workload.reference(reference)
    for array in memory:
        assert all(
            math.isclose(float(a), float(b), rel_tol=1e-9, abs_tol=1e-9)
            for a, b in zip(memory[array], reference[array])
        ), (workload.name, array)
    bits = encode_bitstream(adg, result.schedule)
    assert bits.total_bits() > 0
    return result, sim


ACCEL_KERNELS = [
    ("softbrain", "mm"),
    ("softbrain", "stencil2d"),
    ("softbrain", "fft"),
    ("spu", "histogram"),
    ("spu", "join"),
    ("spu", "md"),
    ("triggered", "join"),
    ("revel", "chol"),
    ("revel", "qr"),
]


@pytest.mark.parametrize("accel,kernel_name", ACCEL_KERNELS)
def test_workload_on_accelerator(accel, kernel_name):
    adg = topologies.PRESETS[accel]()
    workload = make_kernel(kernel_name, 0.05)
    result, sim = full_flow(workload, adg)
    assert sim.cycles > 0
    # Feature pickup: SPU unlocks the sparse transforms.
    if accel == "spu" and kernel_name == "histogram":
        assert result.params.use_atomic
    if accel == "spu" and kernel_name == "join":
        assert result.params.use_join


def test_c_source_to_silicon_artifacts(tmp_path):
    source = """
    void blend(double *a, double *b, double *c, int n) {
      #pragma dsa config
      {
        #pragma dsa offload
        for (int i = 0; i < n; ++i) {
          c[i] = 0.5 * a[i] + 0.5 * b[i];
        }
      }
    }
    """
    workload = compile_c(
        source, bindings={"n": 32}, arrays={"a": 32, "b": 32, "c": 32}
    )
    adg = topologies.softbrain()
    result, sim = full_flow(workload, adg)
    assert result.params.unroll >= 1

    # The hardware artifacts: reloadable ADG, config paths, RTL.
    payload = adg_to_dict(adg)
    reloaded = adg_from_dict(payload)
    assert reloaded.stats() == adg.stats()
    paths = generate_config_paths(adg, 3)
    assert not coverage(paths, adg)
    rtl = emit_verilog(adg)
    (tmp_path / "design.v").write_text(rtl)
    assert "dsa_pe_static_dedicated" in rtl


def test_accelerator_beats_cpu_model_on_streaming_kernel():
    adg = topologies.softbrain()
    workload = make_kernel("stencil2d", 0.1)
    _, sim = full_flow(workload, adg)
    assert cpu_cycles(workload) > sim.cycles


def test_serialized_schedule_survives_round_trip():
    """An ADG serialized to JSON compiles identically after reload."""
    adg = topologies.spu()
    reloaded = adg_from_dict(adg_to_dict(adg))
    workload = make_kernel("histogram", 0.05)
    original = compile_kernel(
        workload, adg, rng=DeterministicRng(3), max_iters=100
    )
    again = compile_kernel(
        workload, reloaded, rng=DeterministicRng(3), max_iters=100
    )
    assert original.ok and again.ok
    assert original.params == again.params
    assert original.perf.cycles == again.perf.cycles
