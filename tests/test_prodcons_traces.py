"""Tests for producer-consumer forwarding and interpreter traces."""

import pytest

from repro.compiler.transforms.prodcons import (
    forward_value,
    serialize_through_memory,
)
from repro.ir import (
    ConfigScope,
    Dfg,
    LinearStream,
    OffloadRegion,
    execute_region,
    execute_scope,
)
from repro.ir.stream import RecurrenceStream, StreamDirection
from repro.workloads import kernel as make_kernel
from repro.compiler.kernel import VariantParams


def producer_consumer_scope(n=8, forwarded=True):
    """Producer computes s = sum(a); consumer writes b[i] = a[i] * s."""
    producer_dfg = Dfg("prod")
    a1 = producer_dfg.add_input("a")
    total = producer_dfg.add_instr("acc", [a1], reduction=True)
    producer_dfg.add_output("s_out", total)
    producer = OffloadRegion(
        "prod", producer_dfg,
        input_streams={"a": LinearStream("A", length=n)},
        output_streams={
            "s_out": LinearStream("S", direction=StreamDirection.WRITE,
                                  length=1),
        },
    )
    consumer_dfg = Dfg("cons")
    a2 = consumer_dfg.add_input("a")
    s = consumer_dfg.add_input("s")
    product = consumer_dfg.add_instr("mul", [a2, s])
    consumer_dfg.add_output("b", product)
    consumer = OffloadRegion(
        "cons", consumer_dfg,
        input_streams={
            "a": LinearStream("A", length=n),
            "s": LinearStream("S", length=1, stride=0,
                              outer_length=n, outer_stride=0),
        },
        output_streams={
            "b": LinearStream("B", direction=StreamDirection.WRITE,
                              length=n),
        },
    )
    scope = ConfigScope("pc", regions=[producer, consumer])
    if forwarded:
        # Replace the memory round-trip on s with a forwarded broadcast
        # (the value never touches memory in this lowering).
        consumer.input_streams["s"] = RecurrenceStream(
            array="", source_port="s_out", length=n, repeat=n,
        )
        producer.output_streams["s_out"] = RecurrenceStream(
            array="", source_port="s_out", length=1,
            direction=StreamDirection.WRITE,
        )
        scope.forwards.append(("prod", "s_out", "cons", "s"))
    else:
        serialize_through_memory(scope, "prod")
    return scope


class TestProducerConsumer:
    @pytest.mark.parametrize("forwarded", [True, False])
    def test_both_lowerings_compute_the_same(self, forwarded):
        n = 8
        scope = producer_consumer_scope(n, forwarded)
        memory = {"A": list(range(1, n + 1)), "S": [0], "B": [0] * n}
        execute_scope(scope, memory)
        total = sum(range(1, n + 1))
        if not forwarded:
            assert memory["S"][0] == total
        assert memory["B"] == [v * total for v in range(1, n + 1)]

    def test_fallback_adds_barrier(self):
        scope = producer_consumer_scope(8, forwarded=False)
        assert "prod" in scope.barriers

    def test_forward_value_helper_wires_everything(self):
        scope = producer_consumer_scope(8, forwarded=False)
        scope.barriers.clear()
        consumer = scope.region("cons")
        consumer.input_streams["s"] = []  # helper fills it
        forward_value(scope, "prod", "s_out", "cons", "s", length=1)
        assert scope.forwards == [("prod", "s_out", "cons", "s")]
        from repro.ir.region import as_stream_list

        streams = as_stream_list(consumer.input_streams["s"])
        assert any(isinstance(s, RecurrenceStream) for s in streams)
        assert "prod" in consumer.metadata["forwarded_from"]


class TestInterpreterTraces:
    def test_trace_counts_instances_and_emissions(self):
        workload = make_kernel("classifier", 0.05)
        scope = workload.build(VariantParams(unroll=2))
        memory = workload.make_memory()
        trace = {}
        execute_scope(scope, memory, trace=trace)
        mac = trace[f"{workload.name}_mac"]
        act = trace[f"{workload.name}_act"]
        assert mac["instances"] > act["instances"]
        # The mac region emits once per output neuron.
        assert sum(mac["emitted"]["s_out"]) == act["instances"]
        # Every activation instance emits exactly one word.
        assert all(c == 1 for c in act["emitted"]["y"])

    def test_join_pop_trace_conserves_keys(self):
        workload = make_kernel("join", 0.05)
        scope = workload.build(VariantParams(use_join=True))
        memory = workload.make_memory()
        left_len = len(memory["K0"])
        right_len = len(memory["K1"])
        trace = {}
        execute_scope(scope, memory, trace=trace)
        pops = trace["join"]["join_pops"]
        total_left = sum(left for left, _ in pops)
        total_right = sum(r for _, r in pops)
        assert total_left == left_len
        assert total_right == right_len

    def test_compacting_trace_matches_survivors(self):
        workload = make_kernel("resparsify", 0.05)
        scope = workload.build(VariantParams())
        memory = workload.make_memory()
        trace = {}
        execute_scope(scope, memory, trace=trace)
        record = trace["resparsify"]
        survivors = sum(record["emitted"]["val"])
        import copy

        golden = copy.deepcopy(workload.make_memory())
        workload.reference(golden)
        expected = sum(
            1 for v in workload.make_memory()["C"] if abs(v) > 2.0
        )
        assert survivors == expected
        del golden
