"""Focused tests for the scheduler's timing model."""


from repro.adg import Adg, topologies
from repro.adg.components import (
    Direction,
    Memory,
    ProcessingElement,
    Resourcing,
    Scheduling,
    Switch,
    SyncElement,
)
from repro.ir import ConfigScope, Dfg, LinearStream, OffloadRegion
from repro.ir.stream import RecurrenceStream, StreamDirection
from repro.scheduler import RoutingGraph, Schedule
from repro.scheduler.schedule import Vertex
from repro.scheduler.timing import compute_timing


def chain_fabric(pe_count=3, dynamic=False, delay_depth=8):
    """in -> sw -> pe0 -> sw -> pe1 -> ... -> out, plus a bypass switch
    so two-operand joins are routable."""
    adg = Adg("chain")
    adg.add(Memory(name="m0", width=512))
    adg.add(SyncElement(name="in0", width=256,
                        direction=Direction.INPUT))
    adg.add(SyncElement(name="out0", width=256,
                        direction=Direction.OUTPUT))
    scheduling = Scheduling.DYNAMIC if dynamic else Scheduling.STATIC
    previous = adg.add(Switch(name="sw_in"))
    adg.connect("m0", "in0")
    adg.connect("in0", "sw_in")
    for index in range(pe_count):
        pe = adg.add(ProcessingElement(
            name=f"pe{index}",
            op_names={"add", "mul", "fmul", "fadd", "acc", "copy"},
            scheduling=scheduling,
            delay_fifo_depth=delay_depth,
        ))
        switch = adg.add(Switch(name=f"sw{index}"))
        adg.connect(previous, pe)
        adg.connect(previous, switch)  # bypass
        adg.connect(pe, switch)
        previous = switch
    adg.connect(previous, "out0")
    adg.connect("out0", "m0")
    from repro.adg.components import ControlCore

    core = adg.add(ControlCore(name="core0"))
    adg.connect(core, "sw_in")
    return adg


def two_op_scope(op_a="mul", op_b="add"):
    """x -> a; (x, a) -> b -> out: classic skew shape (the direct x path
    arrives much earlier than the path through a)."""
    dfg = Dfg("skew")
    x = dfg.add_input("x")
    a = dfg.add_instr(op_a, [x, x], name="a")
    b = dfg.add_instr(op_b, [x, a], name="b")
    dfg.add_output("o", b)
    region = OffloadRegion(
        "skew", dfg,
        input_streams={"x": LinearStream("X", length=8)},
        output_streams={
            "o": LinearStream("O", direction=StreamDirection.WRITE,
                              length=8),
        },
    )
    return ConfigScope("s", regions=[region]), dfg


def place_chain(adg, scope, dfg):
    sched = Schedule(scope, adg)
    sched.place(Vertex("skew", dfg.inputs()[0].node_id), "in0")
    sched.place(Vertex("skew", dfg.instructions()[0].node_id), "pe0")
    sched.place(Vertex("skew", dfg.instructions()[1].node_id), "pe1")
    sched.place(Vertex("skew", dfg.outputs()[0].node_id), "out0")
    routing = RoutingGraph(adg)
    for edge in sched.edges():
        src = sched.placement[edge.src]
        dst = sched.placement[edge.dst]
        path = routing.route(src, dst, sched.link_values(), edge.value)
        assert path is not None, (src, dst)
        sched.set_route(edge, path)
    return sched, routing


class TestSkewAndDelays:
    def test_skew_absorbed_by_deep_fifos(self):
        adg = chain_fabric(delay_depth=16)
        scope, dfg = two_op_scope()
        sched, routing = place_chain(adg, scope, dfg)
        timing = compute_timing(sched, routing)
        assert timing.regions["skew"].skew_violations == 0
        # The direct x->b edge must carry a positive configured delay.
        assert any(delay > 0 for delay in sched.input_delays.values())

    def test_shallow_fifos_violate(self):
        adg = chain_fabric(delay_depth=1)
        scope, dfg = two_op_scope(op_a="fmul")  # latency 4 + hops
        sched, routing = place_chain(adg, scope, dfg)
        timing = compute_timing(sched, routing)
        assert timing.regions["skew"].skew_violations > 0

    def test_dynamic_pes_have_no_skew_requirement(self):
        adg = chain_fabric(dynamic=True, delay_depth=1)
        scope, dfg = two_op_scope(op_a="fmul")
        sched, routing = place_chain(adg, scope, dfg)
        timing = compute_timing(sched, routing)
        assert timing.regions["skew"].skew_violations == 0

    def test_latency_includes_route_hops(self):
        adg = chain_fabric()
        scope, dfg = two_op_scope()
        sched, routing = place_chain(adg, scope, dfg)
        timing = compute_timing(sched, routing)
        # mul(3) + add(1) + at least two flopped switch hops.
        assert timing.regions["skew"].latency >= 6


class TestInitiationIntervals:
    def test_unpipelined_op_blocks_its_pe(self):
        adg = chain_fabric()
        dfg = Dfg("d")
        x = dfg.add_input("x")
        q = dfg.add_instr("fdiv" if False else "mul", [x, x])
        del q
        dfg2 = Dfg("div")
        x2 = dfg2.add_input("x")
        division = dfg2.add_instr("div", [x2, x2])
        dfg2.add_output("o", division)
        region = OffloadRegion(
            "div", dfg2,
            input_streams={"x": LinearStream("X", length=8)},
            output_streams={
                "o": LinearStream("O", direction=StreamDirection.WRITE,
                                  length=8),
            },
        )
        adg.node("pe0").op_names.add("div")
        scope = ConfigScope("s", regions=[region])
        sched = Schedule(scope, adg)
        sched.place(Vertex("div", x2.node_id), "in0")
        sched.place(Vertex("div", division.node_id), "pe0")
        sched.place(Vertex("div", dfg2.outputs()[0].node_id), "out0")
        routing = RoutingGraph(adg)
        for edge in sched.edges():
            path = routing.route(
                sched.placement[edge.src], sched.placement[edge.dst],
                sched.link_values(), edge.value,
            )
            sched.set_route(edge, path)
        timing = compute_timing(sched, routing)
        from repro.isa.opcodes import opcode

        assert timing.regions["div"].ii >= opcode("div").latency

    def test_low_rate_region_does_not_poison_high_rate(self):
        """Per-region II: the chol prologue's divide must not throttle
        the triangular update region."""
        from repro.compiler import compile_kernel
        from repro.scheduler.router import RoutingGraph as RG
        from repro.scheduler.timing import compute_timing as ct
        from repro.utils.rng import DeterministicRng
        from repro.workloads import kernel as make_kernel

        adg = topologies.softbrain()
        result = compile_kernel(
            make_kernel("chol", 0.05), adg,
            rng=DeterministicRng(0), max_iters=100,
        )
        assert result.ok
        timing = ct(result.schedule, RG(adg))
        assert timing.regions["chol_d"].ii > 4    # fdiv/fsqrt bound
        assert timing.regions["chol_u"].ii <= 2   # update stays pipelined


class TestRecurrenceTracking:
    def test_forced_recurrence_metadata_respected(self):
        adg = chain_fabric()
        scope, dfg = two_op_scope()
        scope.regions[0].metadata["forced_recurrence"] = 9
        sched, routing = place_chain(adg, scope, dfg)
        timing = compute_timing(sched, routing)
        assert timing.regions["skew"].recurrence_latency >= 9

    def test_reduction_recurrence_is_op_latency(self):
        adg = chain_fabric()
        dfg = Dfg("red")
        x = dfg.add_input("x")
        acc = dfg.add_instr("fadd", [x], reduction=True)
        dfg.add_output("o", acc)
        region = OffloadRegion(
            "red", dfg,
            input_streams={"x": LinearStream("X", length=8)},
            output_streams={
                "o": LinearStream("O", direction=StreamDirection.WRITE,
                                  length=1),
            },
        )
        scope = ConfigScope("s", regions=[region])
        sched = Schedule(scope, adg)
        routing = RoutingGraph(adg)
        timing = compute_timing(sched, routing)
        from repro.isa.opcodes import opcode

        assert timing.regions["red"].recurrence_latency == opcode(
            "fadd"
        ).latency

    def test_self_recurrence_loop_counts_datapath(self):
        adg = chain_fabric()
        dfg = Dfg("loop")
        x = dfg.add_input("x")
        c = dfg.add_input("c")
        s = dfg.add_instr("add", [x, c])
        dfg.add_output("c_out", s)
        region = OffloadRegion(
            "loop", dfg,
            input_streams={
                "x": LinearStream("X", length=8),
                "c": [
                    LinearStream("C", length=4),
                    RecurrenceStream(array="", source_port="c_out",
                                     length=4),
                ],
            },
            output_streams={
                "c_out": [
                    RecurrenceStream(array="", source_port="c_out",
                                     length=4,
                                     direction=StreamDirection.WRITE),
                    LinearStream("C", direction=StreamDirection.WRITE,
                                 length=4),
                ],
            },
        )
        scope = ConfigScope("s", regions=[region])
        sched = Schedule(scope, adg)
        routing = RoutingGraph(adg)
        timing = compute_timing(sched, routing)
        # Loop latency = add(1) + the 2-cycle port hop at minimum.
        assert timing.regions["loop"].recurrence_latency >= 3
