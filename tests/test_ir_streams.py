"""Tests for memory streams (repro.ir.stream)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IrError
from repro.ir.stream import (
    ConstStream,
    IndirectStream,
    LinearStream,
    RecurrenceStream,
    StreamDirection,
    UpdateStream,
    stream_requests,
)


class TestLinearStream:
    def test_1d_contiguous(self):
        stream = LinearStream("a", length=5)
        assert list(stream.addresses()) == [0, 1, 2, 3, 4]
        assert stream.volume() == 5
        assert not stream.is_2d and not stream.is_inductive

    def test_strided(self):
        stream = LinearStream("a", offset=3, stride=2, length=4)
        assert list(stream.addresses()) == [3, 5, 7, 9]

    def test_2d_row_major(self):
        stream = LinearStream(
            "a", length=3, outer_length=2, outer_stride=10
        )
        assert list(stream.addresses()) == [0, 1, 2, 10, 11, 12]
        assert stream.is_2d

    def test_inductive_triangular(self):
        stream = LinearStream(
            "a", length=3, outer_length=3, outer_stride=4, length_stretch=-1
        )
        assert list(stream.addresses()) == [0, 1, 2, 4, 5, 8]
        assert stream.volume() == 6
        assert stream.is_inductive

    def test_inductive_growing(self):
        stream = LinearStream(
            "a", length=1, outer_length=3, outer_stride=0, length_stretch=1
        )
        assert stream.volume() == 1 + 2 + 3

    def test_negative_trip_count_rejected(self):
        stream = LinearStream(
            "a", length=1, outer_length=4, length_stretch=-1
        )
        with pytest.raises(IrError):
            stream.check()

    def test_bad_word_size_rejected(self):
        with pytest.raises(IrError):
            LinearStream("a", word_bytes=3).check()

    @given(
        offset=st.integers(0, 100),
        stride=st.integers(1, 8),
        length=st.integers(0, 20),
        outer_stride=st.integers(0, 50),
        outer_length=st.integers(1, 5),
    )
    def test_volume_matches_address_count(
        self, offset, stride, length, outer_stride, outer_length
    ):
        stream = LinearStream(
            "a", offset=offset, stride=stride, length=length,
            outer_stride=outer_stride, outer_length=outer_length,
        )
        assert len(list(stream.addresses())) == stream.volume()

    @given(length=st.integers(1, 16), outer=st.integers(1, 4))
    def test_row_major_matches_nested_loop(self, length, outer):
        stream = LinearStream(
            "a", length=length, outer_length=outer, outer_stride=length
        )
        expected = [o * length + i for o in range(outer) for i in range(length)]
        assert list(stream.addresses()) == expected


class TestIndirectStream:
    def make(self):
        index = LinearStream("idx", length=4)
        return IndirectStream("a", index=index, index_scale=2, index_offset=1)

    def test_addresses_follow_indices(self):
        stream = self.make()
        assert list(stream.addresses([3, 0, 2, 1])) == [7, 1, 5, 3]

    def test_volume_is_index_volume(self):
        assert self.make().volume() == 4

    def test_requires_index(self):
        with pytest.raises(IrError):
            IndirectStream("a").check()

    def test_index_must_be_read(self):
        index = LinearStream(
            "idx", direction=StreamDirection.WRITE, length=4
        )
        with pytest.raises(IrError):
            IndirectStream("a", index=index).check()


class TestUpdateStream:
    def test_must_be_write(self):
        index = LinearStream("idx", length=4)
        stream = UpdateStream("a", index=index, update_op="add")
        with pytest.raises(IrError):
            stream.check()
        stream.direction = StreamDirection.WRITE
        stream.check()  # now fine


class TestConstAndRecurrence:
    def test_const_values(self):
        stream = ConstStream(array="", value=7, length=3)
        assert list(stream.values()) == [7, 7, 7]
        assert stream.volume() == 3
        assert stream.array == "__const__"

    def test_const_needs_positive_length(self):
        with pytest.raises(IrError):
            ConstStream(array="", value=1, length=0).check()

    def test_recurrence_needs_source(self):
        with pytest.raises(IrError):
            RecurrenceStream(array="", length=4).check()
        RecurrenceStream(array="", source_port="p", length=4).check()


class TestStreamRequests:
    def test_contiguous_coalesces(self):
        stream = LinearStream("a", length=16)
        assert stream_requests(stream, line_words=8) == 2

    def test_partial_line_rounds_up(self):
        stream = LinearStream("a", length=9)
        assert stream_requests(stream, line_words=8) == 2

    def test_strided_no_coalescing(self):
        stream = LinearStream("a", stride=4, length=16)
        assert stream_requests(stream, line_words=8) == 16

    def test_indirect_one_request_per_word(self):
        index = LinearStream("idx", length=10)
        stream = IndirectStream("a", index=index)
        assert stream_requests(stream) == 10

    def test_const_and_recurrence_free(self):
        assert stream_requests(ConstStream(array="", value=0, length=9)) == 0
        assert stream_requests(
            RecurrenceStream(array="", source_port="p", length=9)
        ) == 0

    def test_2d_coalesces_per_row(self):
        stream = LinearStream(
            "a", length=10, outer_length=3, outer_stride=100
        )
        assert stream_requests(stream, line_words=8) == 6  # ceil(10/8)*3
