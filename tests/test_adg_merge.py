"""Tests for the capability-preserving fabric union (adg/merge.py)."""

import pytest

from repro.adg import (
    Adg,
    ControlCore,
    Direction,
    Memory,
    MemoryKind,
    ProcessingElement,
    Scheduling,
    Switch,
    SyncElement,
    component_subsumes,
    merge_adgs,
    merge_all,
    topologies,
    validate_adg,
)
from repro.errors import MergeError
from repro.harness.compile_cache import adg_fingerprint


def small_mesh(name, ops, rows=2, cols=2, **kwargs):
    adg = topologies.build_mesh(rows, cols, name=name, ops=ops, **kwargs)
    return adg


def int_fabric():
    return small_mesh("inty", topologies.INT_OPS)


def fp_fabric():
    return small_mesh(
        "floaty", topologies.FP_OPS, pe_scheduling=Scheduling.DYNAMIC
    )


class TestCapabilityPreservation:
    def test_every_other_node_is_subsumed(self):
        base, other = int_fabric(), fp_fabric()
        merged, node_map = merge_adgs(base, other)
        for node in other.nodes():
            mapped = merged.node(node_map[node.name])
            assert component_subsumes(mapped, node) == [], node.name

    def test_base_nodes_and_links_survive_by_name(self):
        base, other = int_fabric(), fp_fabric()
        merged, _ = merge_adgs(base, other)
        for name in base.node_names():
            assert name in merged
        for link in base.links():
            widths = [
                cand.width
                for cand in merged.links_between(link.src, link.dst)
            ]
            assert any(width >= link.width for width in widths)

    def test_union_parameters(self):
        base, other = int_fabric(), fp_fabric()
        merged, node_map = merge_adgs(base, other)
        # A dynamic-fp PE unified onto a static-int PE keeps both the
        # op-set union and the dynamic execution model.
        some_pe = next(
            node for node in other.nodes() if node.KIND == "pe"
        )
        mapped = merged.node(node_map[some_pe.name])
        assert set(topologies.FP_OPS) <= set(mapped.op_names)
        assert mapped.is_dynamic

    def test_link_multiplicity_preserved(self):
        base = Adg("single")
        base.add(Switch(name="a"))
        base.add(Switch(name="b"))
        base.connect("a", "b", width=64)
        other = Adg("double")
        other.add(Switch(name="a"))
        other.add(Switch(name="b"))
        other.connect("a", "b", width=64)
        other.connect("a", "b", width=32)
        merged, node_map = merge_adgs(base, other)
        dst_a, dst_b = node_map["a"], node_map["b"]
        assert len(merged.links_between(dst_a, dst_b)) >= 2

    def test_merged_fabric_validates(self):
        merged, _ = merge_adgs(
            topologies.softbrain(rows=2, cols=2),
            topologies.triggered(rows=2, cols=2),
        )
        validate_adg(merged, strict=False)


class TestDeterminism:
    def test_self_merge_is_idempotent(self):
        adg = int_fabric()
        merged, node_map = merge_adgs(adg, adg)
        assert adg_fingerprint(merged) == adg_fingerprint(adg)
        assert node_map == {name: name for name in adg.node_names()}

    def test_fingerprint_stability_across_calls(self):
        first, _ = merge_adgs(int_fabric(), fp_fabric())
        second, _ = merge_adgs(int_fabric(), fp_fabric())
        assert adg_fingerprint(first) == adg_fingerprint(second)

    def test_merge_all_identity_first_map(self):
        fabrics = [int_fabric(), fp_fabric(),
                   small_mesh("third", {"add", "acc", "copy"})]
        merged, node_maps = merge_all(fabrics, name="trio")
        assert merged.name == "trio"
        assert len(node_maps) == len(fabrics)
        assert node_maps[0] == {
            name: name for name in fabrics[0].node_names()
        }
        for fabric, node_map in zip(fabrics, node_maps):
            for node in fabric.nodes():
                mapped = merged.node(node_map[node.name])
                assert component_subsumes(mapped, node) == []

    def test_merge_all_empty_rejected(self):
        with pytest.raises(MergeError):
            merge_all([])


def port_fabric(atomic_op):
    """A minimal valid fabric with an atomic-update scratchpad."""
    adg = Adg(f"atomic-{atomic_op}")
    adg.add(Memory(
        name="spad0", kind=MemoryKind.SPAD, width=512, width_bytes=64,
        indirect=True, atomic_update=True, atomic_op=atomic_op,
    ))
    adg.add(SyncElement(name="in0", direction=Direction.INPUT))
    adg.add(SyncElement(name="out0", direction=Direction.OUTPUT))
    adg.add(Switch(name="sw0"))
    adg.add(ProcessingElement(name="pe0", op_names={"add"}))
    adg.add(ControlCore(name="core0"))
    adg.connect("spad0", "in0")
    adg.connect("in0", "sw0")
    adg.connect("sw0", "pe0")
    adg.connect("pe0", "sw0")
    adg.connect("sw0", "out0")
    adg.connect("out0", "spad0")
    adg.connect("core0", "sw0")
    return adg


class TestHonestFailure:
    def test_conflicting_atomic_ops_raise(self):
        with pytest.raises(MergeError, match="atomic"):
            merge_adgs(port_fabric("add"), port_fabric("max"))

    def test_matching_atomic_ops_merge(self):
        merged, _ = merge_adgs(port_fabric("add"), port_fabric("add"))
        assert merged.node("spad0").atomic_update

    def test_unknown_component_kind_raises(self):
        class Exotic(ProcessingElement):
            KIND = "exotic"

        other = port_fabric("add")
        other.add(Exotic(name="weird0", op_names={"add"}))
        other.connect("sw0", "weird0")
        with pytest.raises(MergeError, match="exotic"):
            merge_adgs(port_fabric("add"), other)

    def test_subsumption_reports_gaps(self):
        big = ProcessingElement(name="big", op_names={"add", "mul"})
        small = ProcessingElement(
            name="small", op_names={"add", "fdiv"},
            scheduling=Scheduling.DYNAMIC,
        )
        gaps = component_subsumes(big, small)
        assert any("fdiv" in gap for gap in gaps)
        assert any("dynamic" in gap for gap in gaps)
        assert component_subsumes(big, big) == []

    def test_cross_kind_subsumption_is_a_gap(self):
        pe = ProcessingElement(name="pe", op_names={"add"})
        sw = Switch(name="sw")
        assert component_subsumes(pe, sw)
