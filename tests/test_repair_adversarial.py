"""Schedule repair under adversarial ADG edits.

The contract of :func:`repair_schedule`: after *any* hardware edit it
either produces a linter-clean complete schedule or honestly reports
failure (illegal cost / :class:`SchedulingError`) — it must never hand
back a schedule that claims legality while violating the hardware.
"""

import pytest

from repro.adg.topologies import softbrain
from repro.compiler import compile_kernel
from repro.errors import CompilationError
from repro.scheduler.repair import repair_schedule, strip_invalid
from repro.utils.rng import DeterministicRng
from repro.verify import lint_schedule
from repro.workloads import kernel as make_kernel

SCHED_ITERS = 60


@pytest.fixture(scope="module")
def compiled_mm():
    adg = softbrain()
    kern = make_kernel("mm", 0.05)
    result = compile_kernel(
        kern, adg, rng=DeterministicRng(2026), max_iters=120,
    )
    assert result.ok
    return adg, result


def _fresh(compiled_mm):
    adg, result = compiled_mm
    return adg.clone(), result.schedule.clone()


def assert_never_corrupt(schedule, adg, cost=None, exc=None):
    """Either a legal lint-clean schedule, or an honest failure with a
    structurally sound partial schedule — never silent corruption."""
    if exc is not None:
        return  # an exception is an honest failure
    if cost is not None and cost.is_legal:
        report = lint_schedule(schedule, adg, allow_partial=False)
        assert report.ok, (
            "repair claimed legality but lint disagrees:\n"
            + report.describe()
        )
    else:
        report = lint_schedule(schedule, adg, allow_partial=True)
        assert not report.errors, (
            "failed repair left a corrupt partial schedule:\n"
            + report.describe()
        )


def _attempt_repair(schedule, adg):
    try:
        repaired, cost = repair_schedule(
            schedule, adg, rng=DeterministicRng(7),
            max_iters=SCHED_ITERS,
        )
    except CompilationError as exc:
        return schedule, None, exc
    return repaired, cost, None


class TestAdversarialRepair:
    def test_delete_every_capable_pe(self, compiled_mm):
        adg, schedule = _fresh(compiled_mm)
        # Strip the multiply capability from the whole fabric: the
        # kernel's mul/mac vertices have nowhere legal to go.
        for pe in adg.pes():
            pe.op_names = pe.op_names - {"mul", "mac", "fmul", "fmac"}
        repaired, cost, exc = _attempt_repair(schedule, adg)
        assert exc is not None or not cost.is_legal
        assert_never_corrupt(repaired, adg, cost, exc)

    def test_cut_every_route(self, compiled_mm):
        adg, schedule = _fresh(compiled_mm)
        # Sever the fabric: no switch output survives, so no multi-hop
        # route can exist.
        for switch in adg.switches():
            for link in adg.out_links(switch.name):
                adg.remove_link(link.link_id)
        repaired, cost, exc = _attempt_repair(schedule, adg)
        assert exc is not None or not cost.is_legal
        assert_never_corrupt(repaired, adg, cost, exc)

    def test_shrink_fifo_below_scheduled_delay(self, compiled_mm):
        adg, schedule = _fresh(compiled_mm)
        # Force a visible delay then shrink every FIFO below it.
        if not schedule.routes:
            pytest.skip("no routed edges to delay")
        edge = sorted(schedule.routes, key=repr)[0]
        schedule.input_delays[edge] = 6
        for pe in adg.pes():
            pe.delay_fifo_depth = 2
        repaired, cost, exc = _attempt_repair(schedule, adg)
        assert_never_corrupt(repaired, adg, cost, exc)
        if cost is not None and cost.is_legal:
            for e, delay in repaired.input_delays.items():
                hw = adg.node(repaired.placement[e.dst])
                if hasattr(hw, "delay_fifo_depth"):
                    assert delay <= hw.delay_fifo_depth

    def test_single_dead_pe_repairs_clean(self, compiled_mm):
        adg, schedule = _fresh(compiled_mm)
        placed_pes = sorted(
            name for name in set(schedule.placement.values())
            if adg.node(name).KIND == "pe"
        )
        assert placed_pes, "mm schedule places at least one PE"
        adg.remove(placed_pes[0])
        repaired, cost, exc = _attempt_repair(schedule, adg)
        assert exc is None and cost.is_legal
        assert_never_corrupt(repaired, adg, cost, exc)


class TestStripInvalid:
    def test_binding_to_non_memory_dropped(self, compiled_mm):
        adg, schedule = _fresh(compiled_mm)
        assert schedule.stream_binding, "mm schedule binds streams"
        key = sorted(schedule.stream_binding, key=repr)[0]
        # Point a stream at a switch: the node exists, but it is not a
        # memory — the pre-fix strip missed exactly this.
        switch = sorted(s.name for s in adg.switches())[0]
        schedule.stream_binding[key] = switch
        removed = strip_invalid(schedule, adg)
        assert removed >= 1
        assert key not in schedule.stream_binding

    def test_binding_to_deleted_memory_dropped(self, compiled_mm):
        adg, schedule = _fresh(compiled_mm)
        assert schedule.stream_binding
        bound = sorted(set(schedule.stream_binding.values()))
        for name in bound:
            adg.remove(name)
        strip_invalid(schedule, adg)
        assert not schedule.stream_binding

    def test_stale_delay_assignment_dropped(self, compiled_mm):
        adg, schedule = _fresh(compiled_mm)
        if not schedule.routes:
            pytest.skip("no routed edges to delay")
        edge = sorted(schedule.routes, key=repr)[0]
        schedule.input_delays[edge] = 10
        hw = adg.node(schedule.placement[edge.dst])
        if not hasattr(hw, "delay_fifo_depth"):
            pytest.skip("consumer is not a PE")
        hw.delay_fifo_depth = 4
        removed = strip_invalid(schedule, adg)
        assert removed >= 1
        assert edge not in schedule.input_delays

    def test_delay_within_depth_survives(self, compiled_mm):
        adg, schedule = _fresh(compiled_mm)
        if not schedule.routes:
            pytest.skip("no routed edges to delay")
        edges = [
            e for e in schedule.routes
            if hasattr(adg.node(schedule.placement[e.dst]),
                       "delay_fifo_depth")
        ]
        if not edges:
            pytest.skip("no PE-consumer edges")
        edge = sorted(edges, key=repr)[0]
        depth = adg.node(schedule.placement[edge.dst]).delay_fifo_depth
        schedule.input_delays[edge] = min(1, depth)
        strip_invalid(schedule, adg)
        assert edge in schedule.input_delays

    def test_node_deletion_leaves_lintable_partial(self, compiled_mm):
        adg, schedule = _fresh(compiled_mm)
        # Delete every third placed component — an aggressive
        # node-deletion mutation.
        victims = sorted(set(schedule.placement.values()))[::3]
        for name in victims:
            if adg.has_node(name):
                adg.remove(name)
        strip_invalid(schedule, adg)
        report = lint_schedule(schedule, adg, allow_partial=True)
        assert not report.errors, report.describe()
