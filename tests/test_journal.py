"""Unit tests for the durable job journal: CRC framing, torn-tail
truncation vs. real-corruption detection, recovery folding, the
zero-duplicate-executions auditor, and operator compaction."""

import os

import pytest

from repro.errors import JournalError
from repro.server.journal import (
    JobJournal,
    read_journal,
    recover_state,
    verify_journal,
)


def _path(tmp_path):
    return str(tmp_path / "journal.jsonl")


def _accepted(n, nonce=None, key=None):
    return {"event": "accepted", "job_id": f"job-{n}", "key": key,
            "spec": {"kind": "noop", "options": {"n": n}},
            "nonce": nonce}


def _finished(n, key=None, cached=False):
    return {"event": "finished", "job_id": f"job-{n}", "key": key,
            "status": "ok", "cached": cached, "digest": f"d{n}"}


def _write(path, records, fsync=True):
    with JobJournal(path, fsync=fsync) as journal:
        for record in records:
            journal.append(record)


class TestFraming:
    def test_roundtrip_in_order(self, tmp_path):
        path = _path(tmp_path)
        records = [_accepted(1, nonce="n1"),
                   {"event": "started", "job_id": "job-1"},
                   _finished(1)]
        _write(path, records)
        got, torn = read_journal(path)
        assert got == records
        assert torn == 0

    def test_missing_file_is_empty(self, tmp_path):
        assert read_journal(_path(tmp_path)) == ([], 0)

    def test_append_rejects_unknown_event(self, tmp_path):
        with JobJournal(_path(tmp_path)) as journal:
            with pytest.raises(JournalError):
                journal.append({"event": "exploded", "job_id": "job-1"})

    def test_torn_tail_garbage_truncated(self, tmp_path):
        path = _path(tmp_path)
        _write(path, [_accepted(1), _accepted(2)])
        good_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"0000007f 12ab")  # crash wrote a frame prefix
        records, torn = read_journal(path)
        assert len(records) == 2 and torn > 0
        # repair=True truncates back to the last valid record.
        read_journal(path, repair=True)
        assert os.path.getsize(path) == good_size
        assert read_journal(path) == ([_accepted(1), _accepted(2)], 0)

    def test_torn_tail_partial_record_truncated(self, tmp_path):
        path = _path(tmp_path)
        _write(path, [_accepted(1), _accepted(2), _accepted(3)])
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 5)   # cut the last record mid-frame
        records, torn = read_journal(path, repair=True)
        assert [r["job_id"] for r in records] == ["job-1", "job-2"]
        assert torn > 0
        # The file is clean after repair and appendable again.
        with JobJournal(path) as journal:
            assert len(journal.replay()) == 2
            journal.append(_accepted(3))
        assert len(read_journal(path)[0]) == 3

    def test_corruption_before_tail_raises(self, tmp_path):
        path = _path(tmp_path)
        _write(path, [_accepted(1), _accepted(2)])
        data = bytearray(open(path, "rb").read())
        # Flip a payload byte of the FIRST record (CRC now mismatches)
        # while the second record stays valid behind it.
        data[30] ^= 0x01
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(JournalError):
            read_journal(path)
        # ...and repair must not silently destroy it either.
        with pytest.raises(JournalError):
            read_journal(path, repair=True)

    def test_crc_catches_tamper_in_last_record(self, tmp_path):
        path = _path(tmp_path)
        _write(path, [_accepted(1)])
        data = bytearray(open(path, "rb").read())
        data[-3] ^= 0x01        # same length, wrong bits, newline kept
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        records, torn = read_journal(path)
        assert records == [] and torn > 0   # treated as a torn tail


class TestRecoverState:
    def test_pending_order_and_counters(self):
        records = [
            _accepted(1, nonce="n1"),
            _accepted(2, nonce="n2"),
            {"event": "started", "job_id": "job-1"},
            _finished(1),
            _accepted(5, nonce="n5"),
        ]
        state = recover_state(records)
        assert [r["job_id"] for r in state["pending"]] \
            == ["job-2", "job-5"]
        assert state["max_job_seq"] == 5
        assert state["nonces"] == {"n1": "job-1", "n2": "job-2",
                                   "n5": "job-5"}

    def test_started_without_finished_stays_pending(self):
        records = [_accepted(1),
                   {"event": "started", "job_id": "job-1"}]
        state = recover_state(records)
        assert [r["job_id"] for r in state["pending"]] == ["job-1"]

    def test_empty(self):
        state = recover_state([])
        assert state == {"pending": [], "max_job_seq": 0,
                         "nonces": {}}


class TestVerifyJournal:
    def test_clean_run(self, tmp_path):
        path = _path(tmp_path)
        _write(path, [_accepted(1, key="k1"),
                      {"event": "started", "job_id": "job-1"},
                      _finished(1, key="k1")])
        summary = verify_journal(path)
        assert summary["ok"]
        assert summary["accepted"] == 1
        assert summary["finished"] == 1
        assert summary["pending"] == []
        assert summary["duplicate_computed_finishes"] == []

    def test_cached_finishes_are_not_duplicates(self, tmp_path):
        path = _path(tmp_path)
        _write(path, [
            _accepted(1, key="k1"), _finished(1, key="k1"),
            _accepted(2, key="k1"), _finished(2, key="k1", cached=True),
            _accepted(3, key="k1"), _finished(3, key="k1", cached=True),
        ])
        summary = verify_journal(path)
        assert summary["ok"]
        assert summary["duplicate_computed_finishes"] == []

    def test_two_computed_finishes_flagged(self, tmp_path):
        path = _path(tmp_path)
        _write(path, [
            _accepted(1, key="k1"), _finished(1, key="k1"),
            _accepted(2, key="k1"), _finished(2, key="k1"),
        ])
        summary = verify_journal(path)
        assert not summary["ok"]
        assert summary["duplicate_computed_finishes"] == ["k1"]

    def test_pending_and_torn_reported(self, tmp_path):
        path = _path(tmp_path)
        _write(path, [_accepted(1), _accepted(2), _finished(1)])
        with open(path, "ab") as handle:
            handle.write(b"torn")
        summary = verify_journal(path)
        assert summary["pending"] == ["job-2"]
        assert summary["torn_bytes"] > 0
        assert not summary["ok"]


class TestCompactAndStats:
    def test_compact_keeps_only_given_records(self, tmp_path):
        path = _path(tmp_path)
        _write(path, [_accepted(1), _finished(1),
                      _accepted(2), _accepted(3)])
        records, _ = read_journal(path)
        keep = recover_state(records)["pending"]
        with JobJournal(path) as journal:
            journal.compact(keep)
        got, torn = read_journal(path)
        assert [r["job_id"] for r in got] == ["job-2", "job-3"]
        assert torn == 0

    def test_stats_and_replay_counters(self, tmp_path):
        path = _path(tmp_path)
        journal = JobJournal(path, fsync=False)
        journal.append(_accepted(1))
        journal.append(_finished(1))
        assert journal.stats()["appends"] == 2
        journal.close()
        reopened = JobJournal(path)
        assert len(reopened.replay()) == 2
        assert reopened.stats()["replayed"] == 2
        reopened.close()
