"""Repair-vs-remap telemetry for the Figure 11 harness.

The fig11 comparison is only meaningful if the two arms actually do what
their labels claim: the repair arm must resume warm schedules, the remap
arm must never touch one. These tests pin the
``schedule_repairs``/``full_remaps`` counters to the mode and, with the
DSE debug mode on, require every repaired and final schedule to pass
the :mod:`repro.verify` linter.
"""

import pytest

from repro.harness import fig11


@pytest.fixture(scope="module")
def outcome():
    return fig11.run(
        kernel_names=("mm",), scale=0.05, dse_iters=3, sched_iters=12,
        seed=0, verify=True,
    )


def test_counters_match_mode(outcome):
    _, summary = outcome
    repair = summary["repair_counters"]
    remap = summary["remap_counters"]
    # The repair arm resumes at least one warm schedule; its only
    # from-scratch mapping is the initial compile.
    assert repair["schedule_repairs"] > 0
    assert repair["full_remaps"] >= 1
    # The remap arm must never repair.
    assert remap.get("schedule_repairs", 0) == 0
    assert remap["full_remaps"] > 0
    # Every candidate compile is one or the other.
    assert (
        repair["schedule_repairs"] + repair["full_remaps"]
        == remap["full_remaps"]
    )


def test_every_repaired_schedule_passes_linter(outcome):
    _, summary = outcome
    for mode in ("repair_counters", "remap_counters"):
        counters = summary[mode]
        assert counters["verify_lints"] > 0
        assert counters.get("verify_errors", 0) == 0, (
            f"{mode}: linter found errors in repaired/final schedules"
        )
    # The repair arm lints both the stripped warm schedules and the
    # final mappings, so it sees strictly more lint runs.
    assert (
        summary["repair_counters"]["verify_lints"]
        > summary["remap_counters"]["verify_lints"]
    )


def test_verify_off_by_default():
    _, summary = fig11.run(
        kernel_names=("mm",), scale=0.05, dse_iters=1, sched_iters=10,
        seed=1,
    )
    assert "verify_lints" not in summary["repair_counters"]
    assert summary["repair_counters"]["schedule_repairs"] >= 0
