"""Tests for the incremental schedule bookkeeping (PR 2).

The schedule maintains utilization counters (``pe_load``/``port_load``/
``link_values``/``memory_streams``/issue cost/route length) live under
mutation instead of re-deriving them per objective evaluation. These
tests pin the incremental state to the from-scratch ``_recompute_*``
oracles under randomized mutation sequences, check the region-timing
cache keyed on mutation epochs, and carry the regression tests for the
two move-operator bugs fixed in the same change (`_swap_instructions`
reporting progress after a revert, `_reroute_congested` losing a route
when an endpoint went unplaced).
"""

import pickle


from repro.adg import Adg, topologies
from repro.adg.components import (
    Direction,
    ProcessingElement,
    Switch,
    SyncElement,
)
from repro.ir import ConfigScope, Dfg, LinearStream, OffloadRegion
from repro.ir.stream import StreamDirection
from repro.scheduler import RoutingGraph, Schedule, SpatialScheduler
from repro.scheduler import stochastic as stochastic_mod
from repro.scheduler.objective import evaluate_schedule
from repro.scheduler.schedule import Edge, Vertex
from repro.scheduler.timing import compute_timing
from repro.utils.rng import DeterministicRng
from repro.utils.telemetry import Telemetry
from repro.verify import lint_schedule

from tests.test_scheduler import dot_scope


def two_region_scope():
    """Two independent dot-product regions (distinct epochs/timings)."""
    regions = []
    for name, unroll in (("r0", 4), ("r1", 2)):
        donor = dot_scope(n=8, unroll=unroll).regions[0]
        regions.append(OffloadRegion(
            name, donor.dfg,
            input_streams=donor.input_streams,
            output_streams=donor.output_streams,
        ))
    return ConfigScope("s", regions=regions)


def assert_counters_match_oracles(sched):
    assert sched.pe_load() == sched._recompute_pe_load()
    assert sched.port_load() == sched._recompute_port_load()
    assert sched.pe_issue_cost() == sched._recompute_pe_issue_cost()
    assert sched.link_values() == sched._recompute_link_values()
    assert sched.route_length() == sched._recompute_route_length()
    # memory_streams order within a memory is unspecified.
    live = {m: sorted(keys) for m, keys in sched.memory_streams().items()}
    oracle = {
        m: sorted(keys)
        for m, keys in sched._recompute_memory_streams().items()
    }
    assert live == oracle
    # link_load is derived from link_values; check consistency too.
    assert sched.link_load() == {
        link: len(values)
        for link, values in sched._recompute_link_values().items()
    }
    # The verify linter runs the same drift oracles; it must agree that
    # the live state is clean even on structurally wild schedules (the
    # randomized routes are not connected paths, so only state.* counts).
    report = lint_schedule(sched, allow_partial=True)
    drift = report.select("state.")
    assert not drift, report.describe()


class TestIncrementalCounters:
    def test_randomized_mutations_match_oracles(self):
        adg = topologies.softbrain()
        sched = Schedule(dot_scope(n=8, unroll=4), adg)
        rng = DeterministicRng("parity")
        vertices = sched.vertices()
        edges = sched.edges()
        link_ids = [link.link_id for link in adg.links()]
        memories = [
            m.name for m in (adg.dma(), adg.scratchpad()) if m is not None
        ]
        ports = [("dot", "a"), ("dot", "b"), ("dot", "c")]
        for step in range(400):
            op = rng.randint(0, 9)
            if op <= 2:
                vertex = rng.choice(vertices)
                pool = sched.candidates_for(vertex)
                if pool:
                    sched.place(vertex, rng.choice(pool))
            elif op == 3:
                sched.unplace(rng.choice(vertices))
            elif op == 4:
                # Raw observed-dict mutation (bypasses Schedule methods).
                sched.placement.pop(rng.choice(vertices), None)
            elif op <= 6:
                edge = rng.choice(edges)
                hops = rng.randint(0, 4)
                sched.set_route(edge, rng.sample(link_ids, hops))
            elif op == 7:
                sched.routes.pop(rng.choice(edges), None)
            elif op == 8:
                region, port = rng.choice(ports)
                sched.bind_stream(region, port, rng.choice(memories))
            else:
                sched.stream_binding.pop(rng.choice(ports), None)
            if step % 50 == 0:
                assert_counters_match_oracles(sched)
            if step == 200:
                sched = sched.clone()
            if step == 300:
                sched.clear()
                assert sched.pe_load() == {}
                assert sched.route_length() == 0
        assert_counters_match_oracles(sched)

    def test_wholesale_assignment_rebuilds_counters(self):
        adg = topologies.softbrain()
        scheduler = SpatialScheduler(adg, max_iters=60)
        sched, cost = scheduler.schedule(dot_scope())
        assert cost.is_legal
        rebuilt = Schedule(sched.scope, adg)
        rebuilt.placement = dict(sched.placement)
        rebuilt.routes = {
            edge: list(links) for edge, links in sched.routes.items()
        }
        rebuilt.stream_binding = dict(sched.stream_binding)
        rebuilt.input_delays = dict(sched.input_delays)
        assert_counters_match_oracles(rebuilt)
        assert rebuilt.pe_load() == sched.pe_load()
        assert rebuilt.link_values() == sched.link_values()

    def test_evaluation_parity_incremental_vs_rebuilt(self):
        adg = topologies.softbrain()
        scheduler = SpatialScheduler(adg, max_iters=80)
        sched, _ = scheduler.schedule(dot_scope(unroll=4))
        rebuilt = Schedule(sched.scope, adg)
        rebuilt.placement = dict(sched.placement)
        rebuilt.routes = {
            edge: list(links) for edge, links in sched.routes.items()
        }
        rebuilt.stream_binding = dict(sched.stream_binding)
        rebuilt.input_delays = dict(sched.input_delays)
        routing = RoutingGraph(adg)
        assert evaluate_schedule(sched, routing) == evaluate_schedule(
            rebuilt, routing
        )

    def test_clone_shares_immutable_views_not_counters(self):
        adg = topologies.softbrain()
        scheduler = SpatialScheduler(adg, max_iters=60)
        sched, _ = scheduler.schedule(dot_scope())
        twin = sched.clone()
        # DFG-derived views are immutable and shared...
        assert twin.edges() is sched.edges()
        assert twin.vertices() == sched.vertices()
        # ...but mutation state is independent.
        for vertex in list(twin.placement):
            twin.unplace(vertex)
        assert twin.pe_load() == {}
        assert sched.placement
        assert_counters_match_oracles(sched)
        assert_counters_match_oracles(twin)

    def test_pickle_roundtrip_preserves_counters(self):
        adg = topologies.softbrain()
        scheduler = SpatialScheduler(adg, max_iters=60)
        sched, _ = scheduler.schedule(dot_scope())
        loaded = pickle.loads(pickle.dumps(sched))
        assert dict(loaded.placement) == dict(sched.placement)
        assert dict(loaded.routes) == dict(sched.routes)
        assert loaded.pe_load() == sched.pe_load()
        assert loaded.link_values() == sched.link_values()
        assert_counters_match_oracles(loaded)

    def test_unrouted_edges_is_set_difference(self):
        adg = topologies.softbrain()
        sched = Schedule(dot_scope(unroll=4), adg)
        link_ids = [link.link_id for link in adg.links()]
        edges = sched.edges()
        for edge in edges[::2]:
            sched.set_route(edge, link_ids[:2])
        assert set(sched.unrouted_edges()) == set(edges) - set(sched.routes)


class TestTimingCache:
    def test_regions_cached_until_mutated(self):
        adg = topologies.dse_initial()
        telemetry = Telemetry()
        scheduler = SpatialScheduler(
            adg, rng=DeterministicRng("cache"), max_iters=200,
        )
        sched, cost = scheduler.schedule(two_region_scope())
        assert cost.is_legal
        before = dict(telemetry.counters)
        compute_timing(sched, scheduler.routing, telemetry=telemetry)
        compute_timing(sched, scheduler.routing, telemetry=telemetry)

        def delta(name):
            return telemetry.counters.get(name, 0) - before.get(name, 0)

        # First call may hit (the search already timed this exact state);
        # the second call must be served fully from cache.
        assert delta("timing_region_cache_hits") >= 2
        recomputes = delta("timing_region_recomputes")
        # Mutating r0 invalidates only r0.
        vertex = next(v for v in sched.placement if v.region == "r0")
        hw = sched.placement[vertex]
        sched.placement.pop(vertex)
        sched.place(vertex, hw)
        compute_timing(sched, scheduler.routing, telemetry=telemetry)
        assert delta("timing_region_recomputes") == recomputes + 1
        assert delta("timing_region_cache_hits") >= 3

    def test_delay_flag_upgrades_recompute(self):
        adg = topologies.softbrain()
        telemetry = Telemetry()
        scheduler = SpatialScheduler(adg, max_iters=60)
        sched, _ = scheduler.schedule(dot_scope())
        sched.placement.pop(next(iter(sched.placement)))  # fresh epoch
        compute_timing(sched, scheduler.routing, assign_delays=False,
                       telemetry=telemetry)
        hits = telemetry.counters.get("timing_region_cache_hits", 0)
        # A no-delays entry cannot serve an assign_delays request.
        compute_timing(sched, scheduler.routing, assign_delays=True,
                       telemetry=telemetry)
        assert telemetry.counters["timing_region_recomputes"] >= 2
        # ...but the delays entry serves both kinds afterwards.
        compute_timing(sched, scheduler.routing, assign_delays=False,
                       telemetry=telemetry)
        compute_timing(sched, scheduler.routing, assign_delays=True,
                       telemetry=telemetry)
        assert telemetry.counters["timing_region_cache_hits"] >= hits + 2

    def test_rebind_invalidates_cache(self):
        adg = topologies.softbrain()
        telemetry = Telemetry()
        scheduler = SpatialScheduler(adg, max_iters=60)
        sched, _ = scheduler.schedule(dot_scope())
        compute_timing(sched, scheduler.routing, telemetry=telemetry)
        recomputes = telemetry.counters.get("timing_region_recomputes", 0)
        sched.rebind(adg.clone())
        compute_timing(sched, scheduler.routing, telemetry=telemetry)
        assert telemetry.counters[
            "timing_region_recomputes"
        ] == recomputes + 1


class TestDeterminism:
    def test_fixed_seed_trajectory_identical(self):
        adg = topologies.dse_initial()
        outcomes = []
        for _ in range(2):
            telemetry = Telemetry()
            scheduler = SpatialScheduler(
                adg, rng=DeterministicRng("traj"), max_iters=120,
                telemetry=telemetry,
            )
            sched, cost = scheduler.schedule(dot_scope(unroll=4))
            outcomes.append((
                cost,
                sorted((str(v), hw) for v, hw in sched.placement.items()),
                sorted(
                    (str(e), tuple(links))
                    for e, links in sched.routes.items()
                ),
                dict(telemetry.counters),
            ))
        assert outcomes[0] == outcomes[1]


class _ForcedCost:
    def __init__(self, scalar):
        self._scalar = scalar

    def scalar(self):
        return self._scalar


class TestMoveOperatorBugfixes:
    def test_swap_revert_reports_no_progress(self, monkeypatch):
        """A reverted swap must return False and leave the schedule
        bit-identical (regression: it returned True after reverting,
        starving the caller's escape perturbation)."""
        adg = topologies.softbrain()
        scheduler = SpatialScheduler(
            adg, rng=DeterministicRng("swap"), max_iters=80,
        )
        sched, cost = scheduler.schedule(dot_scope(unroll=4))
        assert cost.is_legal
        placement_before = dict(sched.placement)
        routes_before = {
            edge: list(links) for edge, links in sched.routes.items()
        }
        calls = {"n": 0}

        def worse_every_time(schedule, routing, timing_result=None,
                             telemetry=None):
            calls["n"] += 1
            return _ForcedCost(float(calls["n"]))

        monkeypatch.setattr(
            stochastic_mod, "evaluate_schedule", worse_every_time
        )
        telemetry = Telemetry()
        scheduler.telemetry = telemetry
        # Some attempts bail early on placement legality without
        # mutating anything; retry until a swap was actually tried.
        returned = None
        for _ in range(20):
            calls["n"] = 0
            returned = scheduler._swap_instructions(sched)
            if calls["n"] >= 2:  # before and after were both evaluated
                break
        assert calls["n"] >= 2
        assert returned is False
        assert dict(sched.placement) == placement_before
        assert {
            edge: list(links) for edge, links in sched.routes.items()
        } == routes_before
        assert telemetry.counters.get("sched_moves_swap_reverted", 0) >= 1
        assert_counters_match_oracles(sched)

    def test_reroute_congested_keeps_route_when_endpoint_unplaced(self):
        """Popping a congested route whose endpoint is unplaced must not
        lose the route (regression: the route was popped, then the move
        bailed out without restoring it)."""
        adg = Adg()
        adg.add(SyncElement(name="in_a", direction=Direction.INPUT))
        adg.add(SyncElement(name="in_b", direction=Direction.INPUT))
        adg.add(Switch(name="sw"))
        adg.add(ProcessingElement(name="pe", op_names={"add"}))
        l1 = adg.connect("in_a", "sw").link_id
        l2 = adg.connect("in_b", "sw").link_id
        l3 = adg.connect("sw", "pe").link_id

        dfg = Dfg("r")
        a = dfg.add_input("a")
        b = dfg.add_input("b")
        x = dfg.add_instr("add", [a, b])
        dfg.add_output("o", x)
        region = OffloadRegion(
            "r", dfg,
            input_streams={
                "a": LinearStream("A", length=4),
                "b": LinearStream("B", length=4),
            },
            output_streams={
                "o": LinearStream("O", direction=StreamDirection.WRITE,
                                  length=4),
            },
        )
        sched = Schedule(ConfigScope("s", regions=[region]), adg)
        sched.place(Vertex("r", x.node_id), "pe")
        e1 = Edge("r", a.node_id, x.node_id, 0)
        e2 = Edge("r", b.node_id, x.node_id, 1)
        # Two distinct values share l3: the link is congested.
        sched.set_route(e1, [l1, l3])
        sched.set_route(e2, [l2, l3])
        assert sched.link_load()[l3] == 2
        # Input vertices were never placed, so both congested routes
        # have an unplaced endpoint.
        scheduler = SpatialScheduler(adg, rng=DeterministicRng("rr"))
        assert scheduler._reroute_congested(sched) is False
        assert sched.routes[e1] == [l1, l3]
        assert sched.routes[e2] == [l2, l3]
        assert_counters_match_oracles(sched)

    def test_reroute_congested_still_reroutes_placed_edges(self):
        adg = topologies.softbrain()
        scheduler = SpatialScheduler(
            adg, rng=DeterministicRng("rr2"), max_iters=40, patience=1,
        )
        sched, _ = scheduler.schedule(dot_scope(unroll=4))
        # Manufacture congestion on a fully placed schedule.
        edges = [
            e for e in sched.edges()
            if e.src in sched.placement and e.dst in sched.placement
        ]
        if len(edges) >= 2:
            shared = list(sched.routes.get(edges[0], [])) or None
            if shared:
                sched.set_route(edges[1], shared)
                routed_before = len(sched.routes)
                if sched.link_load() and max(
                    sched.link_load().values()
                ) > 1:
                    scheduler._reroute_congested(sched)
                    assert len(sched.routes) == routed_before
        assert_counters_match_oracles(sched)


class TestSchedulerTelemetry:
    def test_run_counters_populated(self):
        adg = topologies.softbrain()
        telemetry = Telemetry()
        scheduler = SpatialScheduler(
            adg, rng=DeterministicRng(7), max_iters=60,
            telemetry=telemetry,
        )
        _, cost = scheduler.schedule(dot_scope())
        assert cost.is_legal
        counters = telemetry.counters
        assert counters["sched_runs"] == 1
        assert counters["sched_evaluations"] > 0
        assert counters.get("timing_region_recomputes", 0) > 0
        for phase in ("sched/greedy_place", "sched/route_all",
                      "sched/search"):
            assert phase in telemetry.timings

    def test_disabled_telemetry_is_default_and_silent(self):
        adg = topologies.softbrain()
        scheduler = SpatialScheduler(adg, max_iters=40)
        assert scheduler.telemetry.enabled is False
        _, cost = scheduler.schedule(dot_scope())
        assert scheduler.telemetry.counters == {}
