"""Tests for the compile service: canonical fingerprints, the bounded
compile memo, the content-addressed artifact store, the asyncio job
server (quotas, priorities, coalescing), and the served-equals-direct
bit-identicality guarantee.

The crash-safety suite (``kill -9`` of the CLI server mid-campaign)
lives in :class:`TestCrashSafety`, reusing the PR 5 kill-harness
pattern from ``test_dse_checkpoint.py``.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.adg import topologies
from repro.compiler import compile_kernel
from repro.harness import compile_cache
from repro.server import (
    ArtifactStore,
    BackgroundServer,
    JobSpec,
    ServerClient,
    artifact_digest,
    decode_artifact,
    job_key,
    parse_address,
)
from repro.server.client import RetryPolicy
from repro.server.journal import JobJournal, verify_journal
from repro.server.server import JOURNAL_BASENAME
from repro.sim import simulate
from repro.utils.fingerprint import canonical_dumps, content_digest
from repro.utils.rng import DeterministicRng
from repro.workloads import kernel as make_kernel

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(autouse=True)
def _fresh_memo():
    """Every test starts with a cold, default-bounded, store-less memo."""
    compile_cache.clear()
    compile_cache.detach_store()
    compile_cache.configure(compile_cache.DEFAULT_MAX_ENTRIES)
    yield
    compile_cache.clear()
    compile_cache.detach_store()
    compile_cache.configure(compile_cache.DEFAULT_MAX_ENTRIES)


# ---------------------------------------------------------------------
# Canonical fingerprints
# ---------------------------------------------------------------------
class _StringifiesLikeFive:
    """A non-JSON value whose str() collides with the string "5"."""

    def __str__(self):
        return "5"


class TestCanonicalFingerprint:
    def test_types_never_collide(self):
        values = [5, "5", 5.0, True, None, [5], {"5": 5}, (5,)]
        encodings = {canonical_dumps(v) for v in values[:-1]}
        assert len(encodings) == len(values) - 1
        # ...but tuples and lists are deliberately identified.
        assert canonical_dumps((5,)) == canonical_dumps([5])

    def test_float_bits_not_repr(self):
        assert canonical_dumps(0.0) != canonical_dumps(-0.0)
        assert canonical_dumps(1.0) != canonical_dumps(1)
        assert canonical_dumps(float("nan")) \
            == canonical_dumps(float("nan"))

    def test_dict_and_set_order_independent(self):
        assert canonical_dumps({"a": 1, "b": 2}) \
            == canonical_dumps({"b": 2, "a": 1})
        assert canonical_dumps({3, 1, 2}) == canonical_dumps({1, 2, 3})

    def test_unknown_types_raise(self):
        """Regression: json.dumps(default=str) used to coerce unknown
        values to strings, so distinct values that stringify alike
        collided. The canonical encoder refuses them instead."""
        with pytest.raises(TypeError):
            canonical_dumps(_StringifiesLikeFive())
        # The old encoding would have made these two keys identical:
        assert str(_StringifiesLikeFive()) == str(5)

    def test_collision_regression_in_cache_key(self):
        """A cache key holding a value that stringifies like another
        must raise, not silently alias the other entry."""
        adg = topologies.PRESETS["softbrain"]()
        compile_cache.cached_compile(
            adg, ("collision", 5), lambda: {"who": "int"}
        )
        with pytest.raises(TypeError):
            compile_cache.cached_compile(
                adg, ("collision", _StringifiesLikeFive()),
                lambda: {"who": "alien"},
            )

    def test_adg_fingerprint_structural(self):
        a = topologies.PRESETS["softbrain"]()
        b = topologies.PRESETS["softbrain"]()
        b.name = "renamed"
        assert compile_cache.adg_fingerprint(a) \
            == compile_cache.adg_fingerprint(b)
        c = topologies.PRESETS["dse_initial"]()
        assert compile_cache.adg_fingerprint(a) \
            != compile_cache.adg_fingerprint(c)

    def test_content_digest_is_hex_sha(self):
        digest = content_digest(["x", 1])
        assert len(digest) == 64
        assert digest == content_digest(("x", 1))


# ---------------------------------------------------------------------
# Bounded compile memo
# ---------------------------------------------------------------------
class TestBoundedMemo:
    def test_lru_eviction_and_counters(self):
        adg = topologies.PRESETS["softbrain"]()
        compile_cache.configure(max_entries=2)
        calls = []

        def factory(tag):
            def build():
                calls.append(tag)
                return {"tag": tag}
            return build

        compile_cache.cached_compile(adg, ("m", 1), factory(1))
        compile_cache.cached_compile(adg, ("m", 2), factory(2))
        # Touch 1 so 2 is the LRU victim.
        compile_cache.cached_compile(adg, ("m", 1), factory(1))
        compile_cache.cached_compile(adg, ("m", 3), factory(3))
        stats = compile_cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        assert stats["hits"] == 1
        # 2 was the LRU victim: re-requesting it recomputes; 1 and 3
        # are still resident and hit.
        compile_cache.cached_compile(adg, ("m", 3), factory(3))
        compile_cache.cached_compile(adg, ("m", 2), factory(2))
        assert calls == [1, 2, 3, 2]
        assert compile_cache.stats()["evictions"] == 2

    def test_deepcopy_on_return(self):
        adg = topologies.PRESETS["softbrain"]()
        first = compile_cache.cached_compile(
            adg, ("dc",), lambda: {"nested": [1]}
        )
        first["nested"].append(2)
        again = compile_cache.cached_compile(
            adg, ("dc",), lambda: {"nested": [1]}
        )
        assert again == {"nested": [1]}

    def test_store_delegation(self, tmp_path):
        adg = topologies.PRESETS["softbrain"]()
        store = ArtifactStore(str(tmp_path / "store"))
        compile_cache.attach_store(store)
        compile_cache.cached_compile(adg, ("sd",), lambda: {"v": 1})
        assert store.stats()["entries"] == 1
        # A cold memo falls through to the store instead of refetching.
        compile_cache.clear()
        got = compile_cache.cached_compile(
            adg, ("sd",), lambda: pytest.fail("should hit the store")
        )
        assert got == {"v": 1}
        assert compile_cache.stats()["store_hits"] == 1


# ---------------------------------------------------------------------
# Artifact store
# ---------------------------------------------------------------------
class TestArtifactStore:
    def test_roundtrip_and_persistence(self, tmp_path):
        root = str(tmp_path / "store")
        with ArtifactStore(root) as store:
            store.put("k", {"payload": [1, 2.5, "x"]})
            assert store.get("k") == {"payload": [1, 2.5, "x"]}
            store.put("none", None)
            assert store.get("none") is None          # not MISS
            assert store.get("absent") is store.MISS
        reopened = ArtifactStore(root)
        assert reopened.get("k") == {"payload": [1, 2.5, "x"]}
        assert reopened.stats()["entries"] == 2

    def test_lru_eviction_respects_recency(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "s"), max_entries=2)
        store.put("a", 1)
        store.put("b", 2)
        assert store.get("a") == 1     # bump a
        store.put("c", 3)              # evicts b
        assert store.get("b") is store.MISS
        assert store.get("a") == 1
        assert store.stats()["evictions"] == 1

    def test_max_bytes_eviction(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "s"), max_bytes=4096)
        store.put("big1", list(range(2000)))
        store.put("big2", list(range(2000)))
        assert store.stats()["evictions"] >= 1
        assert store.stats()["bytes"] <= 4096

    def test_truncated_object_dropped_on_reopen(self, tmp_path):
        root = str(tmp_path / "s")
        store = ArtifactStore(root)
        digest = store.put("victim", {"x": 1})
        store.close()
        path = os.path.join(root, "objects", digest + ".bin")
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        reopened = ArtifactStore(root)
        assert reopened.get("victim") is reopened.MISS
        assert reopened.stats()["torn_dropped"] == 1
        # The dropped entry is also gone from the on-disk index.
        final = ArtifactStore(root)
        assert final.stats()["entries"] == 0

    def test_same_size_corruption_detected_on_get(self, tmp_path):
        root = str(tmp_path / "s")
        store = ArtifactStore(root)
        digest = store.put("victim", b"A" * 64)
        store.close()
        path = os.path.join(root, "objects", digest + ".bin")
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF                     # same size, wrong bits
        with open(path, "wb") as handle:
            handle.write(data)
        reopened = ArtifactStore(root)       # size check passes
        assert reopened.get("victim") is reopened.MISS
        assert reopened.stats()["torn_dropped"] == 1

    def test_orphan_objects_and_tmp_files_collected(self, tmp_path):
        root = str(tmp_path / "s")
        store = ArtifactStore(root)
        store.put("keep", 1)
        store.close()
        objects = os.path.join(root, "objects")
        with open(os.path.join(objects, "f" * 64 + ".bin"), "wb") as h:
            h.write(b"orphan")
        with open(os.path.join(objects, "left.tmp"), "wb") as h:
            h.write(b"tmp")
        ArtifactStore(root)
        names = sorted(os.listdir(objects))
        assert len(names) == 1 and names[0].endswith(".bin")

    def test_no_tmp_leftovers_after_puts(self, tmp_path):
        root = str(tmp_path / "s")
        store = ArtifactStore(root)
        for index in range(5):
            store.put(f"k{index}", index)
        store.close()
        leftovers = [name for name in os.listdir(root)
                     if name.endswith(".tmp")]
        leftovers += [name
                      for name in os.listdir(os.path.join(root,
                                                          "objects"))
                      if name.endswith(".tmp")]
        assert leftovers == []

    def test_fsck_clean_store(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "s"))
        for index in range(3):
            store.put(f"k{index}", {"i": index})
        assert store.fsck() == []


# ---------------------------------------------------------------------
# Job specs
# ---------------------------------------------------------------------
class TestJobSpec:
    def test_round_trips_through_json(self):
        spec = JobSpec(kind="simulate", workload="md", scale=0.1,
                       seed=3, sim_engine="event",
                       options={"cases": 2}, tenant="t", priority=1)
        wire = json.loads(json.dumps(spec.to_dict()))
        assert JobSpec.from_dict(wire) == spec

    def test_rejects_unknown_kind_and_fields(self):
        with pytest.raises(ValueError):
            JobSpec(kind="transmogrify")
        with pytest.raises(ValueError):
            JobSpec.from_dict({"kind": "compile", "bogus": 1})

    def test_key_excludes_scheduling_metadata(self):
        base = JobSpec(kind="compile", workload="mm")
        other = JobSpec(kind="compile", workload="mm",
                        tenant="elsewhere", priority=0)
        assert job_key(base) == job_key(other)
        different = JobSpec(kind="compile", workload="mm", seed=99)
        assert job_key(base) != job_key(different)

    def test_parse_address(self):
        assert parse_address("1.2.3.4:99") == ("1.2.3.4", 99)
        assert parse_address("1.2.3.4") == ("1.2.3.4", 8753)
        assert parse_address(":99") == ("127.0.0.1", 99)


# ---------------------------------------------------------------------
# Server scheduling semantics (fast: noop jobs only)
# ---------------------------------------------------------------------
def _noop(tag, duration=0.0, **kw):
    return JobSpec(kind="noop", options={"tag": tag,
                                         "duration": duration}, **kw)


class TestServerScheduling:
    def test_quota_rejects_and_recovers(self, tmp_path):
        with BackgroundServer(str(tmp_path / "s"), workers=0,
                              tenant_quota=1) as bg:
            with ServerClient(*bg.address) as client:
                blocker = client.submit(_noop("blocker", 0.5,
                                              tenant="busy"))
                assert blocker["ok"]
                rejected = client.submit(_noop("extra", 0.0,
                                               tenant="busy"))
                assert not rejected["ok"]
                assert "quota-exceeded" in rejected["error"]
                other = client.submit(_noop("fine", 0.0,
                                            tenant="calm"))
                assert other["ok"]
                assert client.wait(blocker["job_id"])["ok"]
                retried = client.run(_noop("extra", 0.0,
                                           tenant="busy"))
                assert retried["ok"]
                counters = client.stats()["counters"]
                assert counters["server_rejected_quota"] == 1

    def test_priority_orders_execution(self, tmp_path):
        with BackgroundServer(str(tmp_path / "s"), workers=0) as bg:
            with ServerClient(*bg.address) as client:
                blocker = client.submit(_noop("blocker", 0.4))
                time.sleep(0.1)   # let the blocker start running
                low = client.submit(_noop("low", 0.0, priority=10))
                high = client.submit(_noop("high", 0.0, priority=0))
                low_record = client.wait(low["job_id"])
                high_record = client.wait(high["job_id"])
                client.wait(blocker["job_id"])
                assert high_record["exec_seq"] < low_record["exec_seq"]

    def test_noop_is_never_cached(self, tmp_path):
        with BackgroundServer(str(tmp_path / "s"), workers=0) as bg:
            with ServerClient(*bg.address) as client:
                first = client.run(_noop("same"))
                second = client.run(_noop("same"))
                assert not first["cached"] and not second["cached"]
                assert client.stats()["store"]["entries"] == 0

    def test_unknown_ops_and_jobs_report_errors(self, tmp_path):
        with BackgroundServer(str(tmp_path / "s"), workers=0) as bg:
            with ServerClient(*bg.address) as client:
                assert client.ping()
                bad_op = client.request({"op": "frobnicate"})
                assert not bad_op["ok"]
                missing = client.wait("job-9999")
                assert not missing["ok"]
                bad_kind = client.request(
                    {"op": "run", "job": {"kind": "nope"}}
                )
                assert not bad_kind["ok"]


# ---------------------------------------------------------------------
# Served == direct (bit-identicality)
# ---------------------------------------------------------------------
SEED = 7
SCALE = 0.05
ITERS = 60


def _direct_compile():
    return compile_kernel(
        make_kernel("mm", SCALE), topologies.PRESETS["softbrain"](),
        rng=DeterministicRng(SEED), max_iters=ITERS, attempts=3,
    )


def _spec(kind, **kw):
    fields = {"workload": "mm", "preset": "softbrain", "scale": SCALE,
              "seed": SEED, "sched_iters": ITERS, "attempts": 3}
    fields.update(kw)
    return JobSpec(kind=kind, **fields)


class TestServedEqualsDirect:
    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory):
        root = str(tmp_path_factory.mktemp("served") / "store")
        with BackgroundServer(root, workers=0) as bg:
            with ServerClient(*bg.address) as client:
                yield client

    def test_compile_bit_identical(self, service):
        record = service.run(_spec("compile"))
        assert record["ok"] and not record["cached"]
        served = decode_artifact(record)
        direct = _direct_compile()
        assert record["digest"] == artifact_digest(direct)
        assert served.params.describe() == direct.params.describe()
        assert {repr(v): n for v, n in
                served.schedule.placement.items()} \
            == {repr(v): n for v, n in
                direct.schedule.placement.items()}
        assert [repr(c) for c in served.program] \
            == [repr(c) for c in direct.program]
        # The served artifact simulates identically to the direct one.
        results = []
        for compiled in (served, direct):
            workload = make_kernel("mm", SCALE)
            memory = workload.make_memory()
            compiled.scope.bind_constants(memory)
            adg = topologies.PRESETS["softbrain"]()
            results.append(simulate(adg, compiled, memory))
        assert results[0].cycles == results[1].cycles
        assert results[0].memory == results[1].memory
        assert results[0].region_cycles == results[1].region_cycles

    def test_warm_resubmit_hits_and_matches(self, service):
        cold = service.run(_spec("compile"))
        warm = service.run(_spec("compile"))
        assert warm["cached"]
        assert warm["digest"] == cold["digest"]

    def test_simulate_job_matches_direct_sim(self, service):
        record = service.run(_spec("simulate"))
        assert record["ok"]
        served = decode_artifact(record)
        direct = _direct_compile()
        workload = make_kernel("mm", SCALE)
        memory = workload.make_memory()
        direct.scope.bind_constants(memory)
        reference = simulate(
            topologies.PRESETS["softbrain"](), direct, memory
        )
        assert served.cycles == reference.cycles
        assert served.memory == reference.memory
        assert served.instances == reference.instances
        assert record["digest"] == artifact_digest(reference)
        # Resubmits are hits with the same digest.
        again = service.run(_spec("simulate"))
        assert again["cached"]
        assert again["digest"] == record["digest"]

    def test_failed_compiles_replay_as_cached_failures(self, service):
        # join needs indirect/join hardware the CCA preset lacks; the
        # deterministic failure is cached exactly like a success.
        spec = _spec("compile", workload="join", preset="cca")
        failed = service.run(spec)
        assert not failed["ok"] and failed["status"] == "failed"
        replay = service.run(spec)
        assert not replay["ok"] and replay["cached"]

    def test_coalescing_joins_inflight_work(self, service):
        spec = _spec("compile", seed=SEED + 1)
        first = service.submit(spec)
        with ServerClient(*parse_address(
                f"{service.host}:{service.port}")) as second_client:
            second = second_client.submit(spec)
            record_a = service.wait(first["job_id"])
            record_b = second_client.wait(second["job_id"])
        assert record_a["digest"] == record_b["digest"]
        assert second["job_id"] == first["job_id"]   # same job


# ---------------------------------------------------------------------
# Crash safety (kill -9 mid-write) + CLI round-trip
# ---------------------------------------------------------------------
def _start_cli_server(store_root, *extra):
    """Start ``repro serve --port 0`` and return (proc, (host, port))."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--store", store_root, "--workers", "0", *extra],
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.time() + 60
    line = ""
    while time.time() < deadline:
        line = proc.stdout.readline()
        if line.startswith("serving on "):
            break
        if proc.poll() is not None:
            raise RuntimeError(
                f"server died at startup: {line}{proc.stdout.read()}"
            )
    host_port = line.split()[2]
    return proc, parse_address(host_port)


class TestCrashSafety:
    def test_kill_9_mid_write_reopens_clean(self, tmp_path):
        """SIGKILL the serving process while it is writing artifacts;
        the reopened store must never reference a torn artifact."""
        store_root = str(tmp_path / "store")
        proc, address = _start_cli_server(store_root)
        try:
            with ServerClient(*address) as client:
                for seed in range(3):
                    response = client.submit(
                        _spec("compile", seed=seed)
                    )
                    assert response["ok"], response
                # Kill as soon as the first artifact lands — the
                # remaining jobs are mid-compile/mid-write.
                objects = os.path.join(store_root, "objects")
                deadline = time.time() + 120
                while time.time() < deadline:
                    if os.path.isdir(objects) and any(
                        name.endswith(".bin")
                        for name in os.listdir(objects)
                    ):
                        break
                    time.sleep(0.02)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        store = ArtifactStore(store_root)
        # Deep verification: every surviving index entry must load
        # bit-clean; nothing may be referenced-but-torn.
        assert store.fsck() == []
        stats = store.stats()
        assert stats["entries"] >= 1
        # And the surviving artifacts are genuinely usable.
        for seed in range(3):
            envelope = store.get(job_key(_spec("compile", seed=seed)))
            if envelope is store.MISS:
                continue
            compiled = envelope["artifact"]
            assert compiled.ok
            assert artifact_digest(compiled)

    def test_cli_submit_round_trip(self, tmp_path):
        """`repro submit` against `repro serve`, plus cross-process
        bit-identicality: the served digest matches a direct compile
        performed in *this* process."""
        store_root = str(tmp_path / "store")
        proc, address = _start_cli_server(store_root)
        try:
            host, port = address
            result = subprocess.run(
                [sys.executable, "-m", "repro", "submit", "compile",
                 "mm", "--server", f"{host}:{port}",
                 "--scale", str(SCALE), "--seed", str(SEED),
                 "--sched-iters", str(ITERS)],
                env={**os.environ, "PYTHONPATH": "src"},
                cwd=REPO_ROOT, capture_output=True, text=True,
                timeout=300,
            )
            assert result.returncode == 0, result.stdout + result.stderr
            record = json.loads(result.stdout)
            assert record["ok"]
            with ServerClient(host, port) as client:
                stats = client.stats()
                assert stats["counters"]["server_jobs_done"] >= 1
                client.shutdown()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        # Digest parity across processes: the CLI used attempts=2
        # (the JobSpec default), so mirror that here.
        direct = compile_kernel(
            make_kernel("mm", SCALE),
            topologies.PRESETS["softbrain"](),
            rng=DeterministicRng(SEED), max_iters=ITERS,
        )
        assert record["digest"] == artifact_digest(direct)
        # The artifact also survives a fresh store read.
        store = ArtifactStore(store_root)
        spec = JobSpec(kind="compile", workload="mm", scale=SCALE,
                       seed=SEED, sched_iters=ITERS)
        envelope = store.get(job_key(spec))
        assert envelope is not store.MISS
        assert artifact_digest(envelope["artifact"]) == record["digest"]


# ---------------------------------------------------------------------
# Journal-backed crash recovery (kill -9 mid-queue)
# ---------------------------------------------------------------------
class TestJournalRecovery:
    def test_kill_9_mid_queue_loses_no_acked_jobs(self, tmp_path):
        """SIGKILL the server with acked-but-unfinished jobs queued;
        a restart on the same store must replay the journal, finish
        every acked job under its original id, and produce digests
        bit-identical to an uninterrupted direct compile."""
        store_root = str(tmp_path / "store")
        proc, address = _start_cli_server(store_root)
        acks = []
        try:
            with ServerClient(*address) as client:
                for seed in (0, 1):
                    response = client.submit(_spec("compile",
                                                   seed=seed))
                    assert response["ok"], response
                    acks.append(response["job_id"])
            # The acks are durable (fsync-before-ack); kill now, with
            # both jobs still queued or mid-compile.
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        proc, address = _start_cli_server(store_root)
        records = {}
        try:
            with ServerClient(*address) as client:
                for seed, job_id in zip((0, 1), acks):
                    record = client.wait(job_id)
                    assert record["ok"], record
                    records[seed] = record
                counters = client.stats()["counters"]
                recovered = (
                    counters.get("journal_recovered_jobs", 0)
                    + counters.get("journal_recovered_cached", 0)
                )
                assert recovered == 2
                client.shutdown()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        # Zero lost acked jobs, zero duplicate computed executions.
        summary = verify_journal(
            os.path.join(store_root, JOURNAL_BASENAME)
        )
        assert summary["pending"] == []
        assert summary["duplicate_computed_finishes"] == []
        # Bit-identical to the uninterrupted computation.
        for seed in (0, 1):
            direct = compile_kernel(
                make_kernel("mm", SCALE),
                topologies.PRESETS["softbrain"](),
                rng=DeterministicRng(seed), max_iters=ITERS,
                attempts=3,
            )
            assert records[seed]["digest"] == artifact_digest(direct)


# ---------------------------------------------------------------------
# Load shedding and backpressure
# ---------------------------------------------------------------------
class TestLoadShedding:
    def test_overload_envelope_and_inflight_completion(self, tmp_path):
        """Past max_queue_depth the server answers with an honest
        overload envelope (never a silent drop), and everything it
        already accepted still completes."""
        with BackgroundServer(str(tmp_path / "s"), workers=0,
                              max_queue_depth=2) as bg:
            with ServerClient(*bg.address) as client:
                blocker = client.submit(_noop("blocker", 0.6))
                time.sleep(0.15)            # let it start running
                queued = [client.submit(_noop(f"q{i}"))
                          for i in range(2)]
                assert all(q["ok"] for q in queued)
                rejected = client.request({
                    "op": "submit",
                    "job": _noop("extra").to_dict(),
                })
                assert not rejected["ok"]
                assert rejected["overloaded"]
                assert rejected["error"] == "overloaded"
                assert rejected["retry_after"] > 0
                assert rejected["queued"] == 2
                assert rejected["max_queue_depth"] == 2
                assert client.wait(blocker["job_id"])["ok"]
                for ack in queued:
                    assert client.wait(ack["job_id"])["ok"]
                counters = client.stats()["counters"]
                assert counters["server_shed_rejects"] == 1
                assert "server_shed" not in counters

    def test_high_priority_displaces_lowest_queued(self, tmp_path):
        """Shedding is priority-aware: a strictly-better admission
        evicts the worst queued job, which finishes with an honest
        shed record rather than vanishing."""
        with BackgroundServer(str(tmp_path / "s"), workers=0,
                              max_queue_depth=2) as bg:
            with ServerClient(*bg.address) as client:
                blocker = client.submit(_noop("blocker", 0.6))
                time.sleep(0.15)
                low1 = client.submit(_noop("low1", 0.0, priority=10))
                low2 = client.submit(_noop("low2", 0.0, priority=10))
                high = client.submit(_noop("high", 0.0, priority=0))
                assert high["ok"]
                # The later of the two equal-priority jobs was shed.
                shed = client.wait(low2["job_id"])
                assert shed["state"] == "shed"
                assert not shed["ok"]
                assert shed["overloaded"]
                assert shed["retry_after"] > 0
                assert client.wait(blocker["job_id"])["ok"]
                assert client.wait(low1["job_id"])["ok"]
                assert client.wait(high["job_id"])["ok"]
                counters = client.stats()["counters"]
                assert counters["server_shed"] == 1
                assert counters["server_jobs_shed"] == 1

    def test_run_backs_off_and_recovers(self, tmp_path):
        """client.run() absorbs overload envelopes: it backs off by
        the server's retry_after hint and completes once the queue
        drains."""
        with BackgroundServer(str(tmp_path / "s"), workers=0,
                              max_queue_depth=1) as bg:
            client = ServerClient(
                *bg.address,
                retry=RetryPolicy(retries=8, backoff_base=0.02,
                                  backoff_cap=0.1, jitter_seed=0),
            )
            blocker = client.submit(_noop("blocker", 0.3))
            time.sleep(0.1)
            filler = client.submit(_noop("filler", 0.1))
            assert filler["ok"]
            record = client.run(_noop("pushed", 0.0))
            assert record["ok"], record
            assert client.backpressure_waits >= 1
            assert client.wait(blocker["job_id"])["ok"]
            stats = client.stats()
            assert stats["counters"]["server_shed_rejects"] >= 1
            assert stats["max_queue_depth"] == 1
            client.close()


# ---------------------------------------------------------------------
# `repro store fsck` CLI
# ---------------------------------------------------------------------
class TestStoreFsckCli:
    @staticmethod
    def _fsck(store_root, *extra):
        return subprocess.run(
            [sys.executable, "-m", "repro", "store", "fsck",
             "--store", store_root, *extra],
            env={**os.environ, "PYTHONPATH": "src"}, cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=120,
        )

    def test_fsck_flags_corruption_and_gc_compacts(self, tmp_path):
        store_root = str(tmp_path / "store")
        store = ArtifactStore(store_root)
        store.put(canonical_dumps(("obj", 1)),
                  {"artifact": b"payload-one"})
        store.put(canonical_dumps(("obj", 2)),
                  {"artifact": b"payload-two"})
        store.close()
        with JobJournal(os.path.join(store_root,
                                     JOURNAL_BASENAME)) as journal:
            journal.append({"event": "accepted", "job_id": "job-1",
                            "key": "k1", "spec": {"kind": "noop"},
                            "nonce": None})
            journal.append({"event": "finished", "job_id": "job-1",
                            "key": "k1", "status": "ok",
                            "cached": False, "digest": "d1"})
            journal.append({"event": "accepted", "job_id": "job-2",
                            "key": "k2", "spec": {"kind": "noop"},
                            "nonce": None})
        clean = self._fsck(store_root)
        assert clean.returncode == 0, clean.stdout + clean.stderr
        report = json.loads(clean.stdout)
        assert report["ok"]
        assert report["dropped_objects"] == []
        assert report["journal"]["pending"] == ["job-2"]
        # Bit-flip one object payload on disk.
        objects = os.path.join(store_root, "objects")
        victim = os.path.join(objects, sorted(os.listdir(objects))[0])
        blob = bytearray(open(victim, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(victim, "wb") as handle:
            handle.write(bytes(blob))
        damaged = self._fsck(store_root)
        assert damaged.returncode == 1
        report = json.loads(damaged.stdout)
        assert not report["ok"]
        assert len(report["dropped_objects"]) == 1
        assert report["store"]["entries"] == 1
        # fsck dropped the damaged entry; --gc also compacts the
        # journal down to its pending records.
        collected = self._fsck(store_root, "--gc")
        assert collected.returncode == 0
        report = json.loads(collected.stdout)
        assert report["ok"]
        assert report["journal_compacted"] == {"kept_records": 1,
                                               "dropped_records": 2}
        summary = verify_journal(
            os.path.join(store_root, JOURNAL_BASENAME)
        )
        assert summary["pending"] == ["job-2"]
        assert summary["records"] == 1
