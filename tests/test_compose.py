"""Tests for composition exploration (dse/compose.py + warm-starts).

The composition explorer inherits the DSE determinism contract:
``workers`` only changes wall-clock, never the trajectory, and a
checkpoint/resume round-trip reproduces the uninterrupted run exactly.
These tests pin that, plus the partition mutation algebra, the
cross-fabric warm-start translation, and the batched finalist
measurement path.
"""

import multiprocessing

import pytest

from repro.adg.merge import merge_all
from repro.compiler.pipeline import compile_kernel
from repro.dse import (
    CompositionExplorer,
    FinalistCase,
    canonical_partition,
    mutate_partition,
    partition_strategy,
    simulate_finalists,
    specialize_kernels,
)
from repro.errors import DseError
from repro.scheduler import translate_warm_schedules
from repro.server.jobs import (
    CACHEABLE_KINDS,
    JOB_KINDS,
    JobSpec,
    job_key,
)
from repro.utils.rng import DeterministicRng
from repro.workloads import kernel as make_kernel

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

KERNELS = ("mm", "pool")
SCALE = 0.05


class TestPartitionAlgebra:
    def test_canonical_partition_sorts(self):
        assert canonical_partition([["b", "a"], ["c"]]) == (
            ("a", "b"), ("c",)
        )
        assert canonical_partition([["c"], ["a", "b"]]) == (
            ("a", "b"), ("c",)
        )

    def test_strategy_classification(self):
        assert partition_strategy((("a", "b", "c"),)) == "merged"
        assert partition_strategy((("a",), ("b",))) == "per_kernel"
        assert partition_strategy((("a", "b"), ("c",))) == "partitioned"

    def test_mutation_is_deterministic(self):
        start = canonical_partition([["a", "b"], ["c"]])
        first = mutate_partition(start, DeterministicRng(("m", 3)))
        second = mutate_partition(start, DeterministicRng(("m", 3)))
        assert first == second

    def test_mutation_preserves_kernel_set(self):
        start = canonical_partition([["a", "b"], ["c", "d"]])
        kernels = {"a", "b", "c", "d"}
        for idx in range(40):
            mutated, description = mutate_partition(
                start, DeterministicRng(("mut", idx))
            )
            members = [k for cluster in mutated for k in cluster]
            assert sorted(members) == sorted(kernels)
            assert len(members) == len(set(members))
            assert mutated == canonical_partition(mutated)
            assert description.split(":")[0] in {
                "merge", "split", "move", "noop"
            }

    def test_mutation_reaches_all_strategies(self):
        start = canonical_partition([["a", "b"], ["c"]])
        seen = set()
        for idx in range(60):
            mutated, _ = mutate_partition(
                start, DeterministicRng(("cover", idx))
            )
            seen.add(partition_strategy(mutated))
        assert {"merged", "per_kernel", "partitioned"} <= seen

    def test_singleton_partition_is_stable(self):
        start = canonical_partition([["only"]])
        mutated, description = mutate_partition(
            start, DeterministicRng("solo")
        )
        assert mutated == start
        assert description == "noop"


@pytest.fixture(scope="module")
def specialized():
    kernels = [make_kernel(name, SCALE) for name in KERNELS]
    return specialize_kernels(
        kernels, DeterministicRng("compose-test"), sched_iters=60
    )


def _budget(specialized, fraction=1.2):
    return fraction * sum(spec.area for spec in specialized.values())


def _make_explorer(specialized, seed=7, **kwargs):
    kwargs.setdefault("sched_iters", 30)
    kwargs.setdefault("area_budget_mm2", _budget(specialized))
    return CompositionExplorer(
        specialized, rng=DeterministicRng(seed), **kwargs
    )


def _trajectory(result):
    return [
        (
            entry.iteration,
            entry.candidate,
            tuple(entry.partition),
            entry.accepted,
            entry.objective if entry.objective == float("-inf")
            else round(entry.objective, 9),
            tuple(entry.mutations),
        )
        for entry in result.history
    ]


class TestSpecialization:
    def test_specialized_baseline_fields(self, specialized):
        assert set(specialized) == set(KERNELS)
        for spec in specialized.values():
            assert spec.cycles > 0
            assert spec.area > 0
            assert spec.schedules

    def test_warm_start_translates_onto_merged_fabric(self, specialized):
        fabrics = [specialized[name].adg for name in sorted(KERNELS)]
        merged, maps = merge_all(fabrics)
        node_maps = dict(zip(sorted(KERNELS), maps))
        for name in KERNELS:
            ported, stripped = translate_warm_schedules(
                {name: specialized[name].schedules}, merged,
                node_maps[name],
            )
            assert stripped >= 0
            assert ported.get(name), (
                f"{name}: warm start lost every placement"
            )
            for schedule in ported[name].values():
                for hw_name in schedule.placement.values():
                    assert hw_name in merged


class TestExplorerDeterminism:
    def test_seeds_cover_merged_and_per_kernel(self, specialized):
        result = _make_explorer(specialized).run(max_iters=0)
        assert {"merged", "per_kernel"} <= set(result.strategy_best)
        assert result.best_objective > float("-inf")
        assert set(result.kernel_cycles) == set(KERNELS)

    @pytest.mark.skipif(not _HAS_FORK, reason="needs fork start method")
    def test_workers_do_not_change_the_trajectory(self, specialized):
        serial = _make_explorer(specialized).run(max_iters=2, workers=1)
        parallel = _make_explorer(specialized).run(
            max_iters=2, workers=4
        )
        assert _trajectory(serial) == _trajectory(parallel)
        assert serial.best_objective == parallel.best_objective
        assert serial.best_partition == parallel.best_partition

    def test_infeasible_budget_is_honest(self, specialized):
        explorer = _make_explorer(specialized, area_budget_mm2=1e-6)
        with pytest.raises(DseError, match="budget"):
            explorer.run(max_iters=1)

    def test_checkpoint_resume_reproduces_trajectory(
        self, specialized, tmp_path
    ):
        path = str(tmp_path / "compose.ckpt")
        _make_explorer(specialized).run(
            max_iters=1, checkpoint_path=path
        )
        resumed = _make_explorer(specialized).run(
            max_iters=3, checkpoint_path=path, resume=True
        )
        straight = _make_explorer(specialized).run(max_iters=3)
        assert _trajectory(resumed) == _trajectory(straight)
        assert resumed.best_objective == straight.best_objective
        assert resumed.best_partition == straight.best_partition

    def test_checkpoint_seed_mismatch_rejected(
        self, specialized, tmp_path
    ):
        path = str(tmp_path / "compose.ckpt")
        _make_explorer(specialized, seed=7).run(
            max_iters=1, checkpoint_path=path
        )
        other = _make_explorer(specialized, seed=8)
        with pytest.raises(DseError, match="seed"):
            other.run(max_iters=2, checkpoint_path=path, resume=True)


class TestFinalistMeasurement:
    def test_shared_fabric_batches_into_one_group(self, specialized):
        fabrics = [specialized[name].adg for name in sorted(KERNELS)]
        merged, maps = merge_all(fabrics)
        node_maps = dict(zip(sorted(KERNELS), maps))
        cases = []
        for name in sorted(KERNELS):
            spec = specialized[name]
            warm, _ = translate_warm_schedules(
                {name: spec.schedules}, merged, node_maps[name]
            )
            compiled = compile_kernel(
                spec.kernel, merged,
                rng=DeterministicRng(("finalist", name)),
                max_iters=40, initial_schedules=warm.get(name),
            )
            assert compiled.ok
            cases.append(FinalistCase(
                label=name, adg=merged, compiled=compiled,
                kernel=spec.kernel,
            ))
        measurement = simulate_finalists(cases, assert_parity=True)
        assert measurement.groups == 1
        assert measurement.lanes == len(KERNELS)
        assert not measurement.errors
        cycles = measurement.cycles()
        assert set(cycles) == set(KERNELS)
        assert all(value > 0 for value in cycles.values())

    def test_distinct_fabrics_stay_in_distinct_groups(self, specialized):
        cases = []
        for name in sorted(KERNELS):
            spec = specialized[name]
            compiled = compile_kernel(
                spec.kernel, spec.adg,
                rng=DeterministicRng(("own", name)),
                max_iters=20, initial_schedules=spec.schedules,
            )
            assert compiled.ok
            cases.append(FinalistCase(
                label=name, adg=spec.adg, compiled=compiled,
                kernel=spec.kernel,
            ))
        measurement = simulate_finalists(cases)
        assert measurement.groups == len(KERNELS)
        assert measurement.lanes == len(KERNELS)


class TestComposeJobPlumbing:
    def test_compose_is_a_cacheable_job_kind(self):
        assert "compose" in JOB_KINDS
        assert "compose" in CACHEABLE_KINDS

    def test_job_key_covers_compose_knobs(self):
        base = dict(kind="compose", workload="mm,pool", scale=SCALE,
                    seed=0, sched_iters=30)
        plain = JobSpec(**base)
        tweaked = JobSpec(**base, options={"budget_fractions": "0.5"})
        assert job_key(plain) != job_key(tweaked)
        assert job_key(JobSpec(**base)) == job_key(plain)
