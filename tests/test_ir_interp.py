"""Tests for regions, scopes, and the functional interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IrError
from repro.ir import (
    ConfigScope,
    ConstStream,
    Dfg,
    IndirectStream,
    JoinSpec,
    LinearStream,
    OffloadRegion,
    RecurrenceStream,
    StreamDirection,
    UpdateStream,
    execute_region,
    execute_scope,
)


def write(array, length, **kwargs):
    return LinearStream(
        array, direction=StreamDirection.WRITE, length=length, **kwargs
    )


def dot_region(n, unroll=1):
    dfg = Dfg("dot")
    a = dfg.add_input("a", lanes=unroll)
    b = dfg.add_input("b", lanes=unroll)
    products = [
        dfg.add_instr("mul", [(a, lane), (b, lane)]) for lane in range(unroll)
    ]
    total = products[0]
    for product in products[1:]:
        total = dfg.add_instr("add", [total, product])
    acc = dfg.add_instr("acc", [total], reduction=True)
    dfg.add_output("c", acc)
    return OffloadRegion(
        "dot",
        dfg,
        input_streams={
            "a": LinearStream("A", length=n),
            "b": LinearStream("B", length=n),
        },
        output_streams={"c": write("C", 1)},
    )


class TestRegionValidation:
    def test_valid_dot(self):
        dot_region(8).validate()

    def test_unknown_port_binding_rejected(self):
        region = dot_region(8)
        region.input_streams["ghost"] = LinearStream("A", length=8)
        with pytest.raises(IrError):
            region.validate()

    def test_missing_stream_rejected(self):
        region = dot_region(8)
        del region.input_streams["b"]
        with pytest.raises(IrError):
            region.validate()

    def test_write_stream_on_input_rejected(self):
        region = dot_region(8)
        region.input_streams["a"] = write("A", 8)
        with pytest.raises(IrError):
            region.validate()

    def test_read_stream_on_output_rejected(self):
        region = dot_region(8)
        region.output_streams["c"] = LinearStream("C", length=1)
        with pytest.raises(IrError):
            region.validate()

    def test_mixed_output_binding_validates(self):
        region = dot_region(8)
        region.output_streams["c"] = [
            write("C", 1),
            RecurrenceStream(
                array="", source_port="c", length=1,
                direction=StreamDirection.WRITE,
            ),
        ]
        region.validate()  # interleaved segments are legal

    def test_instance_count(self):
        assert dot_region(8).instance_count() == 8
        assert dot_region(8, unroll=2).instance_count() is not None

    def test_inconsistent_volumes_rejected(self):
        region = dot_region(8)
        region.input_streams["b"] = LinearStream("B", length=6)
        with pytest.raises(IrError):
            region.instance_count()

    def test_indivisible_lanes_rejected(self):
        region = dot_region(7, unroll=2)
        region.input_streams["a"] = LinearStream("A", length=7)
        region.input_streams["b"] = LinearStream("B", length=7)
        with pytest.raises(IrError):
            region.instance_count()


class TestInterpreterBasics:
    @pytest.mark.parametrize("unroll", [1, 2, 4])
    def test_dot_product(self, unroll):
        n = 8
        region = dot_region(n, unroll)
        region.input_streams["a"] = LinearStream("A", length=n)
        region.input_streams["b"] = LinearStream("B", length=n)
        mem = {
            "A": list(range(1, n + 1)),
            "B": list(range(n, 0, -1)),
            "C": [0],
        }
        execute_region(region, mem)
        assert mem["C"][0] == sum(
            (i + 1) * (n - i) for i in range(n)
        )

    def test_elementwise_with_const(self):
        dfg = Dfg("scale")
        x = dfg.add_input("x")
        k = dfg.add_const(3)
        y = dfg.add_instr("mul", [x, k])
        dfg.add_output("y", y)
        region = OffloadRegion(
            "scale", dfg,
            input_streams={"x": LinearStream("X", length=4)},
            output_streams={"y": write("Y", 4)},
        )
        mem = {"X": [1, 2, 3, 4], "Y": [0] * 4}
        execute_region(region, mem)
        assert mem["Y"] == [3, 6, 9, 12]

    def test_select_implements_branch(self):
        # y[i] = x[i] > 0 ? x[i] : -x[i]  (abs via select)
        dfg = Dfg("abs")
        x = dfg.add_input("x")
        zero = dfg.add_const(0)
        pred = dfg.add_instr("cmp_gt", [x, zero])
        neg = dfg.add_instr("neg", [x])
        y = dfg.add_instr("select", [pred, x, neg])
        dfg.add_output("y", y)
        region = OffloadRegion(
            "abs", dfg,
            input_streams={"x": LinearStream("X", length=5)},
            output_streams={"y": write("Y", 5)},
        )
        mem = {"X": [-2, 3, 0, -7, 5], "Y": [0] * 5}
        execute_region(region, mem)
        assert mem["Y"] == [2, 3, 0, 7, 5]

    def test_emit_every_reduction(self):
        # Row sums of a 3x4 matrix: acc emits every 4 instances.
        dfg = Dfg("rowsum")
        x = dfg.add_input("x")
        acc = dfg.add_instr("acc", [x], reduction=True, emit_every=4)
        dfg.add_output("s", acc)
        region = OffloadRegion(
            "rowsum", dfg,
            input_streams={
                "x": LinearStream("X", length=4, outer_length=3,
                                  outer_stride=4),
            },
            output_streams={"s": write("S", 3)},
        )
        mem = {"X": list(range(12)), "S": [0] * 3}
        execute_region(region, mem)
        assert mem["S"] == [6, 22, 38]

    def test_predicated_store_filters(self):
        # Write only positive values (resparsification-style filter).
        dfg = Dfg("filter")
        x = dfg.add_input("x")
        zero = dfg.add_const(0)
        pred = dfg.add_instr("cmp_gt", [x, zero])
        kept = dfg.add_instr("copy", [x], predicate=pred)
        dfg.add_output("y", kept)
        region = OffloadRegion(
            "filter", dfg,
            input_streams={"x": LinearStream("X", length=6)},
            output_streams={"y": write("Y", 3)},
        )
        mem = {"X": [1, -2, 3, -4, 5, -6], "Y": [0] * 3}
        execute_region(region, mem)
        assert mem["Y"] == [1, 3, 5]

    def test_gather(self):
        dfg = Dfg("gather")
        v = dfg.add_input("v")
        dfg.add_output("y", dfg.add_instr("copy", [v]))
        region = OffloadRegion(
            "gather", dfg,
            input_streams={
                "v": IndirectStream(
                    "A", index=LinearStream("IDX", length=4)
                ),
            },
            output_streams={"y": write("Y", 4)},
        )
        mem = {"A": [10, 20, 30, 40], "IDX": [3, 0, 2, 2], "Y": [0] * 4}
        execute_region(region, mem)
        assert mem["Y"] == [40, 10, 30, 30]

    def test_scatter(self):
        dfg = Dfg("scatter")
        v = dfg.add_input("v")
        dfg.add_output("y", dfg.add_instr("copy", [v]))
        region = OffloadRegion(
            "scatter", dfg,
            input_streams={"v": LinearStream("V", length=3)},
            output_streams={
                "y": IndirectStream(
                    "A", direction=StreamDirection.WRITE,
                    index=LinearStream("IDX", length=3),
                ),
            },
        )
        mem = {"A": [0] * 5, "IDX": [4, 1, 2], "V": [7, 8, 9]}
        execute_region(region, mem)
        assert mem["A"] == [0, 8, 9, 0, 7]

    def test_atomic_histogram(self):
        dfg = Dfg("hist")
        v = dfg.add_input("v")
        dfg.add_output("upd", dfg.add_instr("copy", [v]))
        region = OffloadRegion(
            "hist", dfg,
            input_streams={"v": ConstStream(array="", value=1, length=6)},
            output_streams={
                "upd": UpdateStream(
                    "H", direction=StreamDirection.WRITE,
                    index=LinearStream("IDX", length=6), update_op="add",
                ),
            },
        )
        mem = {"IDX": [0, 1, 1, 2, 1, 0], "H": [0] * 4}
        execute_region(region, mem)
        assert mem["H"] == [2, 3, 1, 0]

    def test_out_of_range_address_raises(self):
        region = dot_region(8)
        mem = {"A": [0] * 4, "B": [0] * 8, "C": [0]}
        with pytest.raises(IrError):
            execute_region(region, mem)

    def test_unknown_array_raises(self):
        region = dot_region(8)
        mem = {"B": [0] * 8, "C": [0]}
        with pytest.raises(IrError):
            execute_region(region, mem)


class TestJoinRegions:
    def join_region(self, mode="intersect"):
        dfg = Dfg("join")
        k0 = dfg.add_input("k0")
        k1 = dfg.add_input("k1")
        v0 = dfg.add_input("v0")
        v1 = dfg.add_input("v1")
        del k0, k1
        product = dfg.add_instr("mul", [v0, v1])
        acc = dfg.add_instr("acc", [product], reduction=True)
        dfg.add_output("out", acc)
        return OffloadRegion(
            "join", dfg,
            input_streams={
                "k0": LinearStream("K0", length=4),
                "v0": LinearStream("V0", length=4),
                "k1": LinearStream("K1", length=5),
                "v1": LinearStream("V1", length=5),
            },
            output_streams={"out": write("OUT", 1)},
            join_spec=JoinSpec(
                left_key="k0", right_key="k1",
                left_payloads=("v0",), right_payloads=("v1",),
                mode=mode,
            ),
            expected_instances=2,
        )

    def test_sparse_inner_product(self):
        region = self.join_region()
        mem = {
            "K0": [1, 3, 5, 7], "V0": [10, 20, 30, 40],
            "K1": [2, 3, 4, 7, 9], "V1": [1, 2, 3, 4, 5],
            "OUT": [0],
        }
        execute_region(region, mem)
        assert mem["OUT"][0] == 20 * 2 + 40 * 4

    def test_no_matches_yields_identity(self):
        region = self.join_region()
        mem = {
            "K0": [1, 3, 5, 7], "V0": [1, 1, 1, 1],
            "K1": [0, 2, 4, 6, 8], "V1": [1, 1, 1, 1, 1],
            "OUT": [-1],
        }
        execute_region(region, mem)
        assert mem["OUT"][0] == 0

    def test_union_mode_sums_all(self):
        region = self.join_region(mode="union")
        # union: every distinct key fires; absent payload is 0, so the
        # accumulated product only counts matches — but it *fires* 7 times.
        mem = {
            "K0": [1, 3, 5, 7], "V0": [10, 20, 30, 40],
            "K1": [2, 3, 4, 7, 9], "V1": [1, 2, 3, 4, 5],
            "OUT": [0],
        }
        execute_region(region, mem)
        assert mem["OUT"][0] == 20 * 2 + 40 * 4

    def test_join_spec_validation(self):
        spec = JoinSpec(left_key="", right_key="b")
        with pytest.raises(IrError):
            spec.check()
        with pytest.raises(IrError):
            JoinSpec(left_key="a", right_key="b", mode="weird").check()

    def test_join_referencing_unbound_port_rejected(self):
        region = self.join_region()
        del region.input_streams["v1"]
        region.dfg = region.dfg  # keep dfg; validation must flag the port
        with pytest.raises(IrError):
            region.validate()


class TestRecurrenceAndScopes:
    def test_in_place_update(self):
        outer, m = 3, 4
        dfg = Dfg("upd")
        a = dfg.add_input("a")
        b = dfg.add_input("b")
        c = dfg.add_input("c")
        t = dfg.add_instr("mul", [a, b])
        updated = dfg.add_instr("add", [c, t])
        dfg.add_output("c_out", updated)
        region = OffloadRegion(
            "upd", dfg,
            input_streams={
                "a": LinearStream("A", length=m, outer_length=outer,
                                  stride=0, outer_stride=1),
                "b": LinearStream("B", length=m, outer_length=outer),
                "c": [
                    LinearStream("C", length=m),
                    RecurrenceStream(array="", source_port="c_out",
                                     length=(outer - 1) * m),
                ],
            },
            output_streams={
                "c_out": [
                    RecurrenceStream(
                        array="", source_port="c_out",
                        length=(outer - 1) * m,
                        direction=StreamDirection.WRITE,
                    ),
                    write("C", m),
                ],
            },
        )
        a_data, b_data = [2, 3, 4], [1, 2, 3, 4]
        mem = {"A": list(a_data), "B": list(b_data), "C": [0] * m}
        execute_region(region, mem)
        expected = [0] * m
        for i in range(outer):
            for j in range(m):
                expected[j] += a_data[i] * b_data[j]
        assert mem["C"] == expected

    def test_producer_consumer_scope(self):
        # Region 1: v = sum(a); Region 2: b[i] = a[i] - v
        n = 4
        producer_dfg = Dfg("prod")
        a1 = producer_dfg.add_input("a")
        acc = producer_dfg.add_instr("acc", [a1], reduction=True)
        producer_dfg.add_output("v_out", acc)
        producer = OffloadRegion(
            "prod", producer_dfg,
            input_streams={"a": LinearStream("A", length=n)},
            output_streams={
                "v_out": RecurrenceStream(
                    array="", source_port="v_out", length=1,
                    direction=StreamDirection.WRITE,
                ),
            },
        )
        consumer_dfg = Dfg("cons")
        a2 = consumer_dfg.add_input("a")
        v = consumer_dfg.add_input("v")
        diff = consumer_dfg.add_instr("sub", [a2, v])
        consumer_dfg.add_output("b", diff)
        consumer = OffloadRegion(
            "cons", consumer_dfg,
            input_streams={
                "a": LinearStream("A", length=n),
                "v": [
                    RecurrenceStream(array="", source_port="v_out", length=1),
                    ConstStream(array="", value=0, length=n - 1),
                ],
            },
            output_streams={"b": write("B", n)},
        )
        # The consumer broadcasts v: recurrence carries it once; for the
        # functional model we re-add it per-instance via a reduction-free
        # trick — instead bind v as 1 recurrence + zeros and accumulate.
        # Simpler: test with n reads of the forwarded value is not the
        # model; keep lanes consistent by subtracting v only from the
        # first element and zeros elsewhere.
        scope = ConfigScope(
            "s", regions=[producer, consumer],
            forwards=[("prod", "v_out", "cons", "v")],
        )
        mem = {"A": [1, 2, 3, 4], "B": [0] * n}
        execute_scope(scope, mem)
        assert mem["B"][0] == 1 - 10
        assert mem["B"][1:] == [2, 3, 4]

    def test_scope_validation_catches_bad_forward(self):
        region = dot_region(8)
        scope = ConfigScope(
            "s", regions=[region],
            forwards=[("dot", "c", "dot", "a")],
        )
        with pytest.raises(IrError):
            scope.validate()

    def test_duplicate_region_names_rejected(self):
        scope = ConfigScope("s", regions=[dot_region(8), dot_region(8)])
        with pytest.raises(IrError):
            scope.validate()

    def test_lag_violation_detected(self):
        # Recurrence read before anything is produced.
        dfg = Dfg("bad")
        x = dfg.add_input("x")
        y = dfg.add_instr("abs", [x])
        dfg.add_output("y_out", y)
        region = OffloadRegion(
            "bad", dfg,
            input_streams={
                "x": RecurrenceStream(array="", source_port="y_out", length=2),
            },
            output_streams={
                "y_out": RecurrenceStream(
                    array="", source_port="y_out", length=2,
                    direction=StreamDirection.WRITE,
                ),
            },
        )
        with pytest.raises(IrError):
            execute_region(region, {})

    @settings(max_examples=25)
    @given(
        values=st.lists(st.integers(-50, 50), min_size=1, max_size=32),
    )
    def test_sum_matches_python(self, values):
        dfg = Dfg("sum")
        x = dfg.add_input("x")
        acc = dfg.add_instr("acc", [x], reduction=True)
        dfg.add_output("s", acc)
        region = OffloadRegion(
            "sum", dfg,
            input_streams={"x": LinearStream("X", length=len(values))},
            output_streams={"s": write("S", 1)},
        )
        mem = {"X": list(values), "S": [0]}
        execute_region(region, mem)
        assert mem["S"][0] == sum(values)
