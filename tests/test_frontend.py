"""Tests for the C-subset frontend."""

import copy

import pytest

from repro.compiler.kernel import VariantParams
from repro.errors import ParseError, SemanticError
from repro.frontend import compile_c, parse, tokenize
from repro.frontend.affine import analyze_affine, evaluate_constant
from repro.frontend.ast_nodes import BinOp, For, Num, Var
from repro.ir import execute_scope

FIG5 = """
void row_scale(double *a, double *b, double *c, int n) {
  #pragma dsa config
  {
    #pragma dsa decouple
    for (int i = 0; i < n; ++i) {
      #pragma dsa offload
      for (int j = 0; j < n; ++j) {
        c[i * n + j] = a[i * n + j] * b[j];
      }
    }
  }
}
"""


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("int x = 42;")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "name", "op", "number", "op", "eof"]

    def test_pragma_recognized(self):
        tokens = tokenize("#pragma dsa offload\nfor")
        assert tokens[0].kind == "pragma"
        assert tokens[0].value == "offload"

    def test_non_dsa_pragma_ignored(self):
        tokens = tokenize("#pragma omp parallel\nx")
        assert tokens[0].kind == "name"

    def test_comments_stripped(self):
        tokens = tokenize("a // comment\n /* block\n comment */ b")
        names = [t.value for t in tokens if t.kind == "name"]
        assert names == ["a", "b"]

    def test_numbers(self):
        tokens = tokenize("1 2.5 3e4 0.5f")
        values = [t.value for t in tokens if t.kind == "number"]
        assert values == ["1", "2.5", "3e4", "0.5f"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_junk_raises(self):
        with pytest.raises(ParseError):
            tokenize("int x = @;")


class TestParser:
    def test_fig5_structure(self):
        functions = parse(FIG5)
        assert len(functions) == 1
        function = functions[0]
        assert function.name == "row_scale"
        assert [p.name for p in function.params] == ["a", "b", "c", "n"]
        assert function.array_params() == ["a", "b", "c"]
        block = function.body.statements[0]
        assert block.config
        inner_block = block.statements[0]
        assert inner_block.decouple
        outer_loop = inner_block.statements[0]
        assert isinstance(outer_loop, For) and not outer_loop.offload
        assert outer_loop.body[0].offload

    def test_offload_must_precede_for(self):
        with pytest.raises(ParseError):
            parse("""
            void f(double *x, int n) {
              #pragma dsa offload
              x[0] = 1.0;
            }
            """)

    def test_expression_precedence(self):
        functions = parse("""
        void f(double *x, int n) {
          x[0] = 1.0 + 2.0 * 3.0;
        }
        """)
        assign = functions[0].body.statements[0]
        assert isinstance(assign.value, BinOp)
        assert assign.value.op == "+"
        assert assign.value.right.op == "*"

    def test_ternary(self):
        functions = parse("""
        void f(double *x, int n) {
          x[0] = n > 1 ? 1.0 : 2.0;
        }
        """)
        from repro.frontend.ast_nodes import Ternary

        assert isinstance(functions[0].body.statements[0].value, Ternary)

    def test_unknown_intrinsic_rejected(self):
        with pytest.raises(ParseError):
            parse("void f(double *x, int n) { x[0] = warp(1.0); }")

    def test_nonconstant_step_rejected(self):
        with pytest.raises(ParseError):
            parse("""
            void f(double *x, int n) {
              for (int i = 0; i < n; i += n) { x[i] = 0.0; }
            }
            """)


class TestAffine:
    def test_linear_subscript(self):
        functions = parse("""
        void f(double *x, int n) {
          for (int i = 0; i < n; ++i) { x[3 * i + 5] = 0.0; }
        }
        """)
        loop = functions[0].body.statements[0]
        subscript = loop.body[0].target.subscript
        affine = analyze_affine(subscript, {"n": 10}, ["i"])
        assert affine.constant == 5
        assert affine.coeff("i") == 3

    def test_two_variable_subscript(self):
        affine = analyze_affine(
            BinOp("+", BinOp("*", Var("i"), Num(8)), Var("j")),
            {}, ["i", "j"],
        )
        assert affine.coeff("i") == 8
        assert affine.coeff("j") == 1

    def test_nonaffine_returns_none(self):
        assert analyze_affine(
            BinOp("*", Var("i"), Var("j")), {}, ["i", "j"]
        ) is None

    def test_constant_folding(self):
        assert evaluate_constant(
            BinOp("*", Num(4), Var("n")), {"n": 8}
        ) == 32
        with pytest.raises(SemanticError):
            evaluate_constant(Var("i"), {})


class TestLowering:
    def check(self, source, bindings, arrays, params=None, tol=1e-9):
        workload = compile_c(source, bindings=bindings, arrays=arrays)
        memory = workload.make_memory()
        reference = copy.deepcopy(memory)
        scope = workload.build(params or VariantParams())
        execute_scope(scope, memory)
        workload.reference(reference)
        import math

        for array in memory:
            assert all(
                math.isclose(float(x), float(y), rel_tol=tol, abs_tol=tol)
                for x, y in zip(memory[array], reference[array])
            ), array
        return workload

    def test_fig5_example(self):
        workload = self.check(
            FIG5, {"n": 8}, {"a": 64, "b": 8, "c": 64},
            VariantParams(unroll=4),
        )
        assert workload.space.unroll_factors == (1, 2, 4, 8)

    def test_accumulator_reduction(self):
        self.check("""
        void rowsums(double *a, double *y, int n, int m) {
          #pragma dsa config
          {
            for (int i = 0; i < n; ++i) {
              double acc = 0;
              #pragma dsa offload
              for (int j = 0; j < m; ++j) {
                acc += a[i * m + j];
              }
              y[i] = acc;
            }
          }
        }
        """, {"n": 4, "m": 8}, {"a": 32, "y": 4},
            VariantParams(unroll=2))

    def test_integer_kernel(self):
        workload = compile_c("""
        void saxpy_int(int *x, int *y, int n) {
          #pragma dsa config
          {
            #pragma dsa offload
            for (int i = 0; i < n; ++i) {
              y[i] = 3 * x[i] + y[i];
            }
          }
        }
        """, bindings={"n": 8}, arrays={"x": 8, "y": 8})
        memory = workload.make_memory()
        reference = copy.deepcopy(memory)
        execute_scope(workload.build(VariantParams()), memory)
        workload.reference(reference)
        assert memory["y"] == reference["y"]

    def test_gather_variant_space(self):
        workload = compile_c("""
        void gather(double *x, int *idx, double *y, int n) {
          #pragma dsa config
          {
            #pragma dsa offload
            for (int i = 0; i < n; ++i) {
              y[i] = x[idx[i]];
            }
          }
        }
        """, bindings={"n": 8}, arrays={"x": 8, "idx": 8, "y": 8})
        assert workload.space.has_indirect
        self_check = workload.make_memory()
        reference = copy.deepcopy(self_check)
        execute_scope(
            workload.build(VariantParams(use_indirect=True)), self_check
        )
        workload.reference(reference)
        assert self_check["y"] == reference["y"]

    def test_if_else_select_conversion(self):
        self.check("""
        void relu(double *x, double *y, int n) {
          #pragma dsa config
          {
            #pragma dsa offload
            for (int i = 0; i < n; ++i) {
              double v = x[i];
              if (v > 0.0) { y[i] = v; } else { y[i] = 0.0; }
            }
          }
        }
        """, {"n": 8}, {"x": 8, "y": 8}, VariantParams(unroll=2))

    def test_intrinsics(self):
        self.check("""
        void mag(double *x, double *y, int n) {
          #pragma dsa config
          {
            #pragma dsa offload
            for (int i = 0; i < n; ++i) {
              y[i] = sqrt(fabs(x[i]) + 1.0);
            }
          }
        }
        """, {"n": 8}, {"x": 8, "y": 8})

    def test_missing_offload_rejected(self):
        with pytest.raises(SemanticError):
            compile_c("""
            void f(double *x, int n) {
              for (int i = 0; i < n; ++i) { x[i] = 0.0; }
            }
            """, bindings={"n": 4}, arrays={"x": 4})

    def test_missing_binding_rejected(self):
        with pytest.raises(SemanticError):
            compile_c(FIG5, bindings={}, arrays={"a": 4, "b": 2, "c": 4})

    def test_missing_array_rejected(self):
        with pytest.raises(SemanticError):
            compile_c(FIG5, bindings={"n": 2}, arrays={"a": 4})

    def test_nonaffine_store_rejected(self):
        with pytest.raises((SemanticError, Exception)):
            compile_c("""
            void f(double *x, int n) {
              #pragma dsa config
              {
                #pragma dsa offload
                for (int i = 0; i < n; ++i) {
                  x[i * i] = 0.0;
                }
              }
            }
            """, bindings={"n": 4}, arrays={"x": 16})

    def test_function_selection(self):
        source = FIG5 + """
        void other(double *z, int n) {
          #pragma dsa config
          {
            #pragma dsa offload
            for (int i = 0; i < n; ++i) { z[i] = z[i] + 1.0; }
          }
        }
        """
        workload = compile_c(
            source, bindings={"n": 4}, arrays={"z": 4},
            function="other",
        )
        assert workload.name == "other"
        with pytest.raises(SemanticError):
            compile_c(source, bindings={"n": 4}, arrays={"z": 4},
                      function="missing")
