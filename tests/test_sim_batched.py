"""Batched columnar engine: oracle-pinned parity.

:func:`repro.sim.simulate_batch` steps B simulation instances in
lock-step on structure-of-arrays state; every lane's SimResult must be
bit-identical to a per-case ``stepped`` run — including fault-repaired
lanes, mixed batches where some lanes deadlock (evicted to the scalar
path, not poisoning the batch), and the 100-seeded-fault-case
acceptance sweep.
"""

import copy
from functools import lru_cache

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.sim.machine as machine
from repro.adg import topologies
from repro.compiler import compile_kernel
from repro.errors import SimulationError
from repro.faults import (
    WorkloadBaseline,
    generate_case,
    run_campaign,
    run_case,
    run_cases_batched,
)
from repro.faults.degrade import _prepare_degrade
from repro.harness.compile_cache import cached_compile
from repro.sim import BatchCase, simulate, simulate_batch
from repro.utils.rng import DeterministicRng
from repro.utils.telemetry import Telemetry
from repro.workloads import kernel as make_kernel
from tests.engine_parity import sim_fields


def _compiled(name, scale=0.05, iters=60):
    adg = topologies.PRESETS["softbrain"]()
    result = cached_compile(
        adg, ("test-sim-engines", name, scale, iters),
        lambda: compile_kernel(
            make_kernel(name, scale), adg,
            rng=DeterministicRng(("engines", name)),
            max_iters=iters, attempts=3,
        ),
    )
    return adg, result


@lru_cache(maxsize=None)
def _baseline(name):
    """A WorkloadBaseline built on the shared compile cache (cheaper
    than prepare_baseline's fresh compile under hypothesis)."""
    adg, compiled = _compiled(name)
    assert compiled.ok, f"{name} failed to compile"
    compiled = copy.deepcopy(compiled)
    kern = make_kernel(name, 0.05)
    memory = kern.make_memory()
    bound = copy.deepcopy(compiled)
    bound.scope.bind_constants(memory)
    sim = simulate(adg, bound, memory, engine="stepped")
    return WorkloadBaseline(
        workload=name, kernel=kern, adg=adg, compiled=compiled,
        baseline_cycles=sim.cycles,
    )


def _lane_case(compiled, workload, deadline_factor=None):
    memory = workload.make_memory()
    bound = copy.deepcopy(compiled)
    bound.scope.bind_constants(memory)
    return BatchCase(memory=memory, compiled=bound,
                     deadline_factor=deadline_factor)


class TestBatchParity:
    """simulate_batch vs. the per-case stepped oracle."""

    @pytest.mark.parametrize("name", ["mm", "ellpack", "pool"])
    def test_homogeneous_batch_matches_stepped(self, name):
        adg, compiled = _compiled(name)
        assert compiled.ok
        workload = make_kernel(name, 0.05)
        cases = [_lane_case(compiled, workload) for _ in range(3)]
        results = simulate_batch(adg, None, cases)
        for case, result in zip(cases, results):
            memory = workload.make_memory()
            bound = copy.deepcopy(compiled)
            bound.scope.bind_constants(memory)
            oracle = simulate(adg, bound, memory, engine="stepped")
            assert sim_fields(result) == sim_fields(oracle)
            for array in memory:
                assert list(case.memory[array]) == list(memory[array])

    def test_empty_batch(self):
        assert simulate_batch(None, None, []) == []

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.data_too_large])
    @given(
        name=st.sampled_from(["mm", "ellpack", "pool"]),
        batch=st.sampled_from([1, 3, 17]),
        seed=st.integers(min_value=0, max_value=2**16),
        max_faults=st.sampled_from([1, 2, 3]),
    )
    def test_fault_batches_match_stepped(self, name, batch, seed,
                                         max_faults):
        """Random fault draws, batched as one columnar run, classify
        identically to per-case stepped runs."""
        baseline = _baseline(name)
        specs = [
            generate_case(seed, index, workloads=(name,),
                          adg=baseline.adg, max_faults=max_faults)
            for index in range(batch)
        ]
        batched = run_cases_batched(specs, baseline=baseline,
                                    sched_iters=60)
        for case, outcome in zip(specs, batched):
            oracle = run_case(case, baseline=baseline, sched_iters=60,
                              sim_engine="stepped")
            assert outcome.to_dict() == oracle.to_dict(), case.name

    def test_mixed_deadlock_lanes_evicted(self, monkeypatch):
        """Lanes forced to deadlock (impossible deadline) are evicted to
        the scalar path with the oracle's exact stall report; healthy
        lanes in the same batch are unaffected."""
        adg, compiled = _compiled("mm")
        workload = make_kernel("mm", 0.05)
        cases = [
            _lane_case(compiled, workload,
                       deadline_factor=0 if index % 2 else None)
            for index in range(5)
        ]
        telemetry = Telemetry()
        results = simulate_batch(adg, None, cases, telemetry=telemetry)
        assert telemetry.counters["sim_batch_lanes_evicted"] == 2

        for index, (case, result) in enumerate(zip(cases, results)):
            memory = workload.make_memory()
            bound = copy.deepcopy(compiled)
            bound.scope.bind_constants(memory)
            if index % 2:
                monkeypatch.setattr(machine, "_DEADLOCK_FACTOR", 0)
                with pytest.raises(SimulationError) as excinfo:
                    simulate(adg, bound, memory, engine="stepped")
                monkeypatch.undo()
                assert isinstance(result, SimulationError)
                assert str(result) == str(excinfo.value)
            else:
                oracle = simulate(adg, bound, memory, engine="stepped")
                assert sim_fields(result) == sim_fields(oracle)

    def test_hundred_fault_cases_bit_identical(self):
        """Acceptance: 100 seeded fault cases on one base ADG, every
        surviving lane bit-identical to its stepped run (fields and
        final memory)."""
        baseline = _baseline("mm")
        specs = [
            generate_case(2026, index, workloads=("mm",),
                          adg=baseline.adg, max_faults=2)
            for index in range(100)
        ]
        prepared = []
        for case in specs:
            prep = _prepare_degrade(
                baseline, case.fault_specs(),
                rng=DeterministicRng((case.seed, "degrade", case.index)),
                sched_iters=60,
            )
            if prep.compiled is not None:
                prepared.append(prep)
        assert len(prepared) >= 50, "fault draw unexpectedly hostile"

        lanes = [
            BatchCase(memory=copy.deepcopy(prep.memory),
                      adg=prep.faulted, compiled=prep.compiled)
            for prep in prepared
        ]
        telemetry = Telemetry()
        results = simulate_batch(None, None, lanes, telemetry=telemetry)
        assert telemetry.counters["sim_batch_lanes"] == len(lanes)

        for prep, lane, result in zip(prepared, lanes, results):
            memory = copy.deepcopy(prep.memory)
            try:
                oracle = simulate(prep.faulted, prep.compiled, memory,
                                  engine="stepped")
            except SimulationError as exc:
                assert isinstance(result, SimulationError)
                assert str(result) == str(exc)
                continue
            assert sim_fields(result) == sim_fields(oracle)
            for array in memory:
                assert list(lane.memory[array]) == list(memory[array])


class TestEngineValidation:
    """Unknown engine names fail fast at every entry point."""

    def test_campaign_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown sim engine"):
            run_campaign(workloads=("mm",), cases=1,
                         sim_engine="warp-speed")

    def test_degrade_path_rejects_unknown_engine(self):
        baseline = _baseline("mm")
        case = generate_case(1, 0, workloads=("mm",), adg=baseline.adg)
        with pytest.raises(ValueError, match="unknown sim engine"):
            run_case(case, baseline=baseline, sched_iters=60,
                     sim_engine="warp-speed")
