"""Tests for the differential fuzzer (repro.verify.fuzz)."""

import json

import pytest

import repro.ir.interp as interp_mod
from repro.errors import CompilationError
from repro.isa.opcodes import evaluate as real_evaluate
from repro.verify import fuzz as fuzz_mod
from repro.verify.fuzz import (
    FuzzCase,
    build_memory,
    generate_case,
    load_repro,
    reference_output,
    replay_repro,
    run_case,
    run_fuzz,
    shrink_case,
    write_repro,
)


def test_case_generation_is_deterministic():
    first = generate_case(7, 3)
    second = generate_case(7, 3)
    assert first == second
    assert generate_case(7, 4) != first


def test_spec_json_roundtrip():
    case = generate_case(11, 0)
    record = json.loads(json.dumps(case.to_dict()))
    assert FuzzCase.from_dict(record) == case


def test_known_case_runs_clean():
    """A hand-written spec: out[i] = copy(in0[i])."""
    case = FuzzCase(
        seed=1, index=0, trip=3, num_inputs=1,
        ops=[["copy", [0]]], reduce_op="", mutations=0,
    )
    assert reference_output(case, build_memory(case)) \
        == build_memory(case)["in0"]
    result = run_case(case)
    assert result.status == "ok", result.divergences


def test_reduction_case_runs_clean():
    case = FuzzCase(
        seed=2, index=0, trip=4, num_inputs=2,
        ops=[["add", [0, 1]]], reduce_op="acc", mutations=0,
    )
    memory = build_memory(case)
    expected = [sum(memory["in0"]) + sum(memory["in1"])]
    assert reference_output(case, memory) == expected
    result = run_case(case)
    assert result.status == "ok", result.divergences


def test_small_campaign_is_clean():
    summary = run_fuzz(cases=6, seed=2026, shrink=False, out_dir=None)
    assert summary.ok, summary.describe()
    assert summary.passed + summary.skipped == 6


def test_unschedulable_counts_as_skip(monkeypatch):
    def refuse(*args, **kwargs):
        raise CompilationError("forced")

    monkeypatch.setattr(fuzz_mod, "compile_kernel", refuse)
    summary = run_fuzz(cases=3, seed=5, shrink=False)
    assert summary.ok
    assert summary.skipped == 3


class TestFaultInjection:
    """Break one layer; the fuzzer must find, shrink, and serialize it."""

    @pytest.fixture()
    def broken_interpreter(self, monkeypatch):
        def broken(op, operands, bits=64):
            name = op if isinstance(op, str) else op.name
            if name == "add":
                return real_evaluate("sub", operands, bits)
            return real_evaluate(op, operands, bits)

        monkeypatch.setattr(interp_mod, "evaluate", broken)

    def test_divergence_found_shrunk_and_replayable(
        self, broken_interpreter, tmp_path, monkeypatch
    ):
        case = FuzzCase(
            seed=3, index=0, trip=8, num_inputs=2,
            ops=[["mul", [0, 1]], ["add", [2, 0]], ["copy", [3]]],
            reduce_op="", mutations=0,
        )
        result = run_case(case)
        assert result.failed
        kinds = {d["kind"] for d in result.divergences}
        assert "interp-mismatch" in kinds

        shrunk, shrunk_result = shrink_case(case)
        assert shrunk_result.failed
        # Strictly simpler: the copy suffix and half the trips go away.
        assert shrunk.trip < case.trip or len(shrunk.ops) < len(case.ops)

        path = tmp_path / "repro.json"
        write_repro(str(path), shrunk, shrunk_result)
        record = json.loads(path.read_text())
        assert record["spec"] == shrunk.to_dict()
        assert record["divergences"]
        assert load_repro(str(path)) == shrunk

        # Still failing on replay while the fault is in place...
        assert replay_repro(str(path)).failed
        # ...and clean once the fault is removed.
        monkeypatch.setattr(interp_mod, "evaluate", real_evaluate)
        assert replay_repro(str(path)).status == "ok"

    def test_campaign_writes_repro_files(
        self, broken_interpreter, tmp_path
    ):
        summary = run_fuzz(
            cases=8, seed=2026, shrink=True, out_dir=str(tmp_path)
        )
        assert not summary.ok
        assert summary.repro_paths
        for path in summary.repro_paths:
            record = json.loads(open(path).read())
            assert record["version"] == fuzz_mod.REPRO_VERSION
            assert record["status"] == "divergent"


def test_lint_divergence_detected(monkeypatch):
    """A linter error on the compiled schedule fails the case."""
    real_lint = fuzz_mod.lint_schedule

    def sabotaged(schedule, adg=None, **kwargs):
        key = next(iter(schedule._pe_load), None)
        if key is not None:
            schedule._pe_load[key] += 1  # simulate counter drift
        return real_lint(schedule, adg, **kwargs)

    monkeypatch.setattr(fuzz_mod, "lint_schedule", sabotaged)
    result = run_case(generate_case(2026, 0))
    assert result.failed
    assert result.divergences[0]["kind"] == "lint"


def test_repro_version_guard(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 999, "spec": {}}))
    with pytest.raises(ValueError):
        load_repro(str(path))
