"""Tests for the cycle-level simulator."""

import copy
import math

import pytest

from repro.adg import topologies
from repro.compiler import compile_kernel
from repro.sim import CycleSimulator, simulate
from repro.utils.rng import DeterministicRng
from repro.workloads import kernel as make_kernel


def compile_on(name, adg, scale=0.05, max_iters=120, seed=0):
    result = compile_kernel(
        make_kernel(name, scale), adg,
        rng=DeterministicRng(seed), max_iters=max_iters,
    )
    assert result.ok, f"{name} did not compile"
    return result


def run(name, adg, scale=0.05, **kwargs):
    workload = make_kernel(name, scale)
    result = compile_kernel(
        workload, adg, rng=DeterministicRng(0), max_iters=120,
    )
    assert result.ok
    memory = workload.make_memory()
    result.scope.bind_constants(memory)
    reference = copy.deepcopy(memory)
    sim = simulate(adg, result, memory, **kwargs)
    workload.reference(reference)
    return sim, memory, reference


class TestFunctionalEquivalence:
    @pytest.mark.parametrize(
        "name", ["mm", "ellpack", "histogram", "join", "pool", "chol"]
    )
    def test_simulation_matches_reference(self, name):
        adg = topologies.softbrain()
        sim, memory, reference = run(name, adg)
        for array in memory:
            assert all(
                math.isclose(float(a), float(b),
                             rel_tol=1e-9, abs_tol=1e-9)
                for a, b in zip(memory[array], reference[array])
            ), (name, array)
        assert sim.cycles > 0

    def test_deterministic_cycles(self):
        adg = topologies.softbrain()
        cycles = set()
        for _ in range(2):
            sim, _, _ = run("ellpack", adg)
            cycles.add(sim.cycles)
        assert len(cycles) == 1


class TestTimingBehaviour:
    def test_config_time_charged(self):
        adg = topologies.softbrain()
        workload = make_kernel("pool", 0.05)
        result = compile_kernel(
            workload, adg, rng=DeterministicRng(0), max_iters=100
        )
        memory1 = workload.make_memory()
        sim_short = CycleSimulator(
            adg, result.scope, result.schedule, result.program,
            config_cycles=1,
        ).run(memory1)
        memory2 = workload.make_memory()
        sim_long = CycleSimulator(
            adg, result.scope, result.schedule, result.program,
            config_cycles=500,
        ).run(memory2)
        assert sim_long.cycles > sim_short.cycles + 400

    def test_atomic_beats_scalarized_histogram(self):
        """The Figure 12 indirect story at the simulator level."""
        spu = topologies.spu()
        workload = make_kernel("histogram", 0.05)
        fast = compile_kernel(
            workload, spu, rng=DeterministicRng(0), max_iters=100
        )
        assert fast.params.use_atomic
        slow_kernel = workload.with_space(
            has_atomic=False, has_indirect=False
        )
        slow = compile_kernel(
            slow_kernel, spu, rng=DeterministicRng(0), max_iters=100
        )
        memory_fast = workload.make_memory()
        memory_slow = workload.make_memory()
        cycles_fast = simulate(spu, fast, memory_fast).cycles
        cycles_slow = simulate(spu, slow, memory_slow).cycles
        assert cycles_fast * 2 < cycles_slow
        assert memory_fast["H"] == memory_slow["H"]

    def test_join_transform_beats_fallback(self):
        spu = topologies.spu()
        workload = make_kernel("join", 0.05)
        fast = compile_kernel(
            workload, spu, rng=DeterministicRng(0), max_iters=100
        )
        assert fast.params.use_join
        slow = compile_kernel(
            workload.with_space(has_join=False), spu,
            rng=DeterministicRng(0), max_iters=100,
        )
        memory_fast = workload.make_memory()
        memory_slow = workload.make_memory()
        cycles_fast = simulate(spu, fast, memory_fast).cycles
        cycles_slow = simulate(spu, slow, memory_slow).cycles
        assert cycles_fast < cycles_slow
        assert memory_fast["OUT"] == memory_slow["OUT"]

    def test_memory_busy_accounted(self):
        adg = topologies.softbrain()
        sim, _, _ = run("mm", adg)
        assert sum(sim.memory_busy.values()) > 0

    def test_instances_counted(self):
        adg = topologies.softbrain()
        sim, _, _ = run("pool", adg)
        assert all(count > 0 for count in sim.instances.values())

    def test_region_finish_cycles_recorded(self):
        adg = topologies.softbrain()
        sim, _, _ = run("pb_2mm", adg)
        finishes = sim.region_cycles
        assert len(finishes) == 2
        # The barrier forces stage 1 to finish after stage 0.
        stage0, stage1 = sorted(finishes)
        assert finishes[stage1] >= finishes[stage0]


class TestBandwidthSensitivity:
    def test_narrower_scratchpad_slows_streaming(self):
        """Halving memory width must not speed anything up, and should
        slow a bandwidth-hungry kernel."""
        wide = topologies.softbrain()
        narrow = topologies.softbrain()
        for memory in narrow.memories():
            memory.width_bytes = 8
            memory.width = 64
        sim_wide, _, _ = run("stencil2d", wide, scale=0.1)
        sim_narrow, _, _ = run("stencil2d", narrow, scale=0.1)
        assert sim_narrow.cycles >= sim_wide.cycles
