"""Cross-cutting property-based tests (hypothesis).

These pin down framework invariants on randomized inputs: random
dataflow graphs must schedule to *consistent* mappings (routes connect
the right endpoints through switches only, multicast values agree),
serialization must round-trip arbitrary generated designs, and stream
address algebra must match its definition.
"""

from functools import lru_cache

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adg import adg_from_dict, adg_to_dict, topologies, validate_adg
from repro.adg.components import Direction, ProcessingElement
from repro.dse.mutation import AdgMutator, trim_unused_features
from repro.errors import DseError
from repro.ir import ConfigScope, Dfg, LinearStream, OffloadRegion
from repro.ir.stream import StreamDirection
from repro.scheduler import SpatialScheduler
from repro.utils.rng import DeterministicRng

_SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Random dataflow scopes
# ---------------------------------------------------------------------------

@st.composite
def random_scope(draw):
    """A random small elementwise dataflow with 1-3 inputs and a few
    arithmetic nodes feeding one output."""
    num_inputs = draw(st.integers(1, 3))
    num_instrs = draw(st.integers(1, 6))
    length = draw(st.sampled_from([4, 8, 16]))
    dfg = Dfg("rand")
    values = [dfg.add_input(f"i{k}") for k in range(num_inputs)]
    for index in range(num_instrs):
        op = draw(st.sampled_from(["add", "sub", "mul", "min", "max"]))
        left = draw(st.sampled_from(values))
        right = draw(st.sampled_from(values))
        values.append(dfg.add_instr(op, [left, right],
                                    name=f"n{index}"))
    dfg.add_output("o", values[-1])
    region = OffloadRegion(
        "rand", dfg,
        input_streams={
            f"i{k}": LinearStream(f"A{k}", length=length)
            for k in range(num_inputs)
        },
        output_streams={
            "o": LinearStream("OUT", direction=StreamDirection.WRITE,
                              length=length),
        },
    )
    return ConfigScope("s", regions=[region])


class TestSchedulerInvariants:
    @_SLOW
    @given(scope=random_scope(), seed=st.integers(0, 3))
    def test_routes_are_wellformed_paths(self, scope, seed):
        adg = topologies.softbrain()
        scheduler = SpatialScheduler(
            adg, rng=DeterministicRng(seed), max_iters=60
        )
        sched, cost = scheduler.schedule(scope)
        for edge, links in sched.routes.items():
            src_hw = sched.placement.get(edge.src)
            dst_hw = sched.placement.get(edge.dst)
            if src_hw is None or dst_hw is None:
                continue
            if not links:
                assert src_hw == dst_hw
                continue
            assert adg.link(links[0]).src == src_hw
            assert adg.link(links[-1]).dst == dst_hw
            for first, second in zip(links, links[1:]):
                joint = adg.link(first).dst
                assert joint == adg.link(second).src
                node = adg.node(joint)
                assert node.KIND in ("switch", "delay")

    @_SLOW
    @given(scope=random_scope())
    def test_legal_costs_have_no_overuse(self, scope):
        adg = topologies.softbrain()
        scheduler = SpatialScheduler(
            adg, rng=DeterministicRng(1), max_iters=80
        )
        sched, cost = scheduler.schedule(scope)
        if not cost.is_legal:
            return
        # Every value set on every link is a singleton.
        for link_id, values in sched.link_values().items():
            assert len(values) == 1
        # Dedicated PEs host at most one instruction.
        for hw_name, load in sched.pe_load().items():
            hw = adg.node(hw_name)
            assert load <= hw.max_instructions

    @_SLOW
    @given(scope=random_scope())
    def test_instruction_placements_capable(self, scope):
        adg = topologies.spu()
        scheduler = SpatialScheduler(
            adg, rng=DeterministicRng(2), max_iters=60
        )
        sched, _cost = scheduler.schedule(scope)
        from repro.ir.dfg import NodeKind

        for vertex, hw_name in sched.placement.items():
            node = sched.node_of(vertex)
            hw = adg.node(hw_name)
            if node.kind is NodeKind.INSTR:
                assert isinstance(hw, ProcessingElement)
                assert node.op in hw.op_names
            elif node.kind is NodeKind.INPUT:
                assert hw.direction is Direction.INPUT
            elif node.kind is NodeKind.OUTPUT:
                assert hw.direction is Direction.OUTPUT


# ---------------------------------------------------------------------------
# Serialization fuzzing
# ---------------------------------------------------------------------------

@st.composite
def random_mesh(draw):
    rows = draw(st.integers(1, 3))
    cols = draw(st.integers(1, 3))
    adg = topologies.build_mesh(rows, cols)
    # Random parameter perturbations.
    for pe in adg.pes():
        if draw(st.booleans()):
            pe.delay_fifo_depth = draw(st.sampled_from([4, 8, 16, 32]))
    spad = adg.scratchpad()
    spad.banks = draw(st.sampled_from([1, 2, 4, 8]))
    spad.indirect = draw(st.booleans())
    if not spad.indirect:
        spad.atomic_update = False
    return adg


class TestSerializationFuzz:
    @_SLOW
    @given(adg=random_mesh())
    def test_round_trip_exact(self, adg):
        payload = adg_to_dict(adg)
        clone = adg_from_dict(payload)
        assert adg_to_dict(clone) == payload

    @_SLOW
    @given(adg=random_mesh())
    def test_feature_set_stable_across_round_trip(self, adg):
        clone = adg_from_dict(adg_to_dict(adg))
        assert clone.feature_set() == adg.feature_set()


# ---------------------------------------------------------------------------
# Stream algebra
# ---------------------------------------------------------------------------

class TestStreamAlgebra:
    @given(
        offset=st.integers(0, 50),
        stride=st.integers(-4, 4).filter(lambda s: s != 0),
        length=st.integers(1, 12),
        outer_stride=st.integers(0, 30),
        outer_length=st.integers(1, 4),
    )
    def test_addresses_match_definition(self, offset, stride, length,
                                        outer_stride, outer_length):
        stream = LinearStream(
            "a", offset=offset, stride=stride, length=length,
            outer_stride=outer_stride, outer_length=outer_length,
        )
        expected = [
            offset + outer * outer_stride + inner * stride
            for outer in range(outer_length)
            for inner in range(length)
        ]
        assert list(stream.addresses()) == expected

    @given(
        length=st.integers(1, 8),
        stretch=st.integers(0, 3),
        outer_length=st.integers(1, 5),
    )
    def test_inductive_volume_is_arithmetic_series(self, length, stretch,
                                                   outer_length):
        stream = LinearStream(
            "a", length=length, outer_length=outer_length,
            length_stretch=stretch,
        )
        expected = sum(
            length + outer * stretch for outer in range(outer_length)
        )
        assert stream.volume() == expected
        assert len(list(stream.addresses())) == expected


# ---------------------------------------------------------------------------
# DSE mutation invariants
# ---------------------------------------------------------------------------

@lru_cache(maxsize=1)
def _mm_schedule():
    """One compiled mm schedule, shared across trim properties."""
    from repro.compiler import compile_kernel
    from repro.workloads import kernel as make_kernel

    adg = topologies.dse_initial()
    result = compile_kernel(
        make_kernel("mm", 0.05), adg,
        rng=DeterministicRng(0), max_iters=80,
    )
    assert result.ok
    return result.schedule


class TestMutatorProperties:
    @_SLOW
    @given(seed=st.integers(0, 1_000_000), count=st.integers(1, 3))
    def test_mutation_never_breaks_validation(self, seed, count):
        """Whatever the seed, a successful mutate() yields an ADG that
        passes adg/validate.py (and never touches the input)."""
        mutator = AdgMutator(DeterministicRng(seed))
        adg = topologies.dse_initial()
        snapshot = adg_to_dict(adg)
        try:
            mutated, descriptions = mutator.mutate(adg, count=count)
        except DseError:
            return  # "no legal mutation found" is an allowed outcome
        assert descriptions
        validate_adg(mutated, strict=False)
        assert adg_to_dict(adg) == snapshot

    @_SLOW
    @given(seed=st.integers(0, 1_000_000))
    def test_spawned_mutation_streams_reproduce(self, seed):
        """Key-derived child seeds (the parallel-DSE contract): two
        mutators spawned with the same key replay the same edits."""
        parent = DeterministicRng(seed)
        first = AdgMutator(parent.spawn("mutate", 2, 0))
        parent.randint(0, 1000)  # perturb the parent stream
        second = AdgMutator(parent.spawn("mutate", 2, 0))
        adg = topologies.dse_initial()
        try:
            _, edits_a = first.mutate(adg, count=2)
        except DseError:
            edits_a = None
        try:
            _, edits_b = second.mutate(adg, count=2)
        except DseError:
            edits_b = None
        assert edits_a == edits_b


class TestTrimProperties:
    @_SLOW
    @given(seed=st.integers(0, 10_000))
    def test_trim_unused_features_idempotent(self, seed):
        """Trimming an already-trimmed ADG changes nothing."""
        adg = topologies.dse_initial()
        mutator = AdgMutator(DeterministicRng(("trim", seed)))
        try:
            adg, _ = mutator.mutate(adg, count=2)
        except DseError:
            adg = adg.clone()
        schedule = _mm_schedule()
        trim_unused_features(adg, [schedule])
        after_first = adg_to_dict(adg)
        assert trim_unused_features(adg, [schedule]) == 0
        assert adg_to_dict(adg) == after_first

    @_SLOW
    @given(seed=st.integers(0, 10_000))
    def test_trim_keeps_design_valid(self, seed):
        adg = topologies.dse_initial()
        mutator = AdgMutator(DeterministicRng(("trimv", seed)))
        try:
            adg, _ = mutator.mutate(adg, count=1)
        except DseError:
            adg = adg.clone()
        trim_unused_features(adg, [_mm_schedule()])
        validate_adg(adg, strict=False)


# ---------------------------------------------------------------------------
# Config paths on random meshes
# ---------------------------------------------------------------------------

class TestConfigPathFuzz:
    @_SLOW
    @given(
        rows=st.integers(1, 3),
        cols=st.integers(1, 3),
        num_paths=st.integers(1, 8),
    )
    def test_always_covered_and_bounded(self, rows, cols, num_paths):
        from repro.hwgen import generate_config_paths
        from repro.hwgen.config_path import coverage

        adg = topologies.build_mesh(rows, cols)
        paths = generate_config_paths(adg, num_paths)
        assert not coverage(paths, adg)
        total_nodes = len(adg.node_names())
        for path in paths:
            assert len(path) <= total_nodes * 3  # no pathological walks
