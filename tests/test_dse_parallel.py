"""Parallel batched DSE: serial/parallel equivalence and resilience.

The explorer's contract is that ``workers`` only changes wall-clock,
never the trajectory: every candidate draws from a key-derived child
seed (``rng.spawn(iteration, idx)``), and acceptance ranks the batch in
candidate-index order. These tests pin that property, plus the
requirement that one failing candidate never aborts its generation.
"""

import multiprocessing

import pytest

from repro.adg import topologies
from repro.dse import DesignSpaceExplorer
from repro.dse import explorer as explorer_module
from repro.errors import CompilationError
from repro.utils.rng import DeterministicRng
from repro.utils.telemetry import Telemetry
from repro.workloads import kernel as make_kernel

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _make_explorer(seed=11, **kwargs):
    kwargs.setdefault("sched_iters", 30)
    return DesignSpaceExplorer(
        [make_kernel("mm", 0.05)],
        topologies.dse_initial(),
        rng=DeterministicRng(seed),
        **kwargs,
    )


def _trajectory(result):
    """The observable trajectory: per-candidate history + acceptance."""
    return [
        (
            entry.iteration,
            entry.candidate,
            entry.accepted,
            round(entry.area_mm2, 9),
            round(entry.power_mw, 9),
            entry.objective if entry.objective == float("-inf")
            else round(entry.objective, 9),
            tuple(entry.mutations),
        )
        for entry in result.history
    ]


class TestParallelSerialEquivalence:
    @pytest.fixture(scope="class")
    def serial(self):
        return _make_explorer().run(max_iters=3, workers=1, batch=3)

    @pytest.fixture(scope="class")
    def parallel(self):
        return _make_explorer().run(max_iters=3, workers=4, batch=3)

    @pytest.mark.skipif(not _HAS_FORK, reason="needs fork start method")
    def test_identical_histories(self, serial, parallel):
        assert _trajectory(serial) == _trajectory(parallel)

    @pytest.mark.skipif(not _HAS_FORK, reason="needs fork start method")
    def test_identical_accepted_history(self, serial, parallel):
        accepted_serial = [e for e in serial.history if e.accepted]
        accepted_parallel = [e for e in parallel.history if e.accepted]
        assert [(e.iteration, e.candidate) for e in accepted_serial] == [
            (e.iteration, e.candidate) for e in accepted_parallel
        ]

    @pytest.mark.skipif(not _HAS_FORK, reason="needs fork start method")
    def test_identical_best_objective(self, serial, parallel):
        assert serial.best_objective == parallel.best_objective

    @pytest.mark.skipif(not _HAS_FORK, reason="needs fork start method")
    def test_identical_best_design(self, serial, parallel):
        from repro.adg import adg_to_dict

        assert adg_to_dict(serial.best_adg) == adg_to_dict(
            parallel.best_adg
        )

    def test_batch_emits_candidate_indices(self, serial):
        generations = {}
        for entry in serial.history:
            if entry.iteration >= 2:
                generations.setdefault(entry.iteration, []).append(
                    entry.candidate
                )
        assert generations
        for indices in generations.values():
            assert indices == list(range(len(indices)))

    def test_at_most_one_acceptance_per_generation(self, serial):
        for iteration in {e.iteration for e in serial.history}:
            accepted = [
                e for e in serial.history
                if e.iteration == iteration and e.accepted
            ]
            assert len(accepted) <= 1

    def test_throughput_reported(self, serial):
        assert serial.telemetry["candidates_per_sec"] > 0
        assert serial.telemetry["wall_seconds"] > 0
        assert serial.telemetry["counters"]["candidates_evaluated"] >= 3


class TestFailureResilience:
    def test_one_failed_candidate_does_not_abort_generation(
        self, monkeypatch
    ):
        """Inject a CompilationError into the first warm-started compile
        (= candidate 0 of the first mutation generation): the remaining
        candidates must still be evaluated and the run must complete."""
        real_compile = explorer_module.compile_kernel
        warm_calls = {"n": 0}

        def flaky_compile(kernel, adg, **kwargs):
            if kwargs.get("initial_schedules") is not None:
                warm_calls["n"] += 1
                if warm_calls["n"] == 1:
                    raise CompilationError("injected failure")
            return real_compile(kernel, adg, **kwargs)

        monkeypatch.setattr(
            explorer_module, "compile_kernel", flaky_compile
        )
        explorer = _make_explorer(seed=3)
        result = explorer.run(max_iters=1, workers=1, batch=3)
        failed = [
            e for e in result.history
            if e.objective == float("-inf")
        ]
        assert failed
        assert explorer.telemetry.counters.get("candidates_failed", 0) >= 1
        # The generation evaluated the full batch despite the failure.
        first_mutation_gen = [
            e for e in result.history if e.iteration == 2
        ]
        assert len(first_mutation_gen) == 3

    @pytest.mark.skipif(not _HAS_FORK, reason="needs fork start method")
    def test_all_candidates_failing_in_pool_completes(self, monkeypatch):
        """Fork-inherited patch: every candidate compile raises inside
        the workers; the run still finishes with the initial design."""

        def always_fail(kernel, adg, **kwargs):
            if kwargs.get("initial_schedules") is not None:
                raise CompilationError("injected failure")
            return compile_for_real(kernel, adg, **kwargs)

        compile_for_real = explorer_module.compile_kernel
        monkeypatch.setattr(
            explorer_module, "compile_kernel", always_fail
        )
        explorer = _make_explorer(seed=5)
        result = explorer.run(max_iters=1, workers=2, batch=2)
        assert all(
            not e.accepted for e in result.history if e.iteration >= 1
        )
        assert result.best_objective == result.history[0].objective

    def test_serial_fallback_when_fork_unavailable(self, monkeypatch):
        monkeypatch.setattr(
            explorer_module.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )
        explorer = _make_explorer()
        assert explorer._make_pool(4) is None
        assert explorer.telemetry.counters["pool_unavailable"] == 1

    def test_workers_one_makes_no_pool(self):
        explorer = _make_explorer()
        assert explorer._make_pool(1) is None


class TestTelemetryIntegration:
    def test_jsonl_run_log_round_trips(self, tmp_path):
        import json

        path = tmp_path / "dse.jsonl"
        telemetry = Telemetry(jsonl_path=str(path))
        explorer = _make_explorer(telemetry=telemetry)
        explorer.run(max_iters=1, workers=1, batch=2)
        telemetry.close()
        records = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        assert records[0]["type"] == "initial"
        assert records[-1]["type"] == "summary"
        generations = [r for r in records if r["type"] == "generation"]
        assert generations
        for record in generations:
            assert record["candidates"] >= 1
            assert len(record["objectives"]) == record["candidates"]

    def test_stage_timings_cover_pipeline(self):
        explorer = _make_explorer()
        explorer.run(max_iters=1, workers=1, batch=2)
        timings = explorer.telemetry.timings
        assert "initial_compile" in timings
        assert "mutate" in timings
        assert "evaluate" in timings
        assert "candidate/estimate" in timings
        assert "candidate/compile" in timings

    def test_repair_vs_remap_counters(self):
        explorer = _make_explorer()
        explorer.run(max_iters=1, workers=1, batch=2)
        counters = explorer.telemetry.counters
        # Warm-started candidates count as repairs, not full remaps.
        assert counters.get("schedule_repairs", 0) >= 1
