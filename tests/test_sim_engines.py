"""Replay-engine equivalence: the event-driven cycle-skipping engine
must produce bit-identical :class:`SimResult` fields to the stepped
oracle — on every registry workload, on randomized (workload, ADG)
combinations, and on the edge cases where bulk firing must fall back to
stepping (barrier releases, depth-1 FIFO boundaries, deadlock).
"""

import copy
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.machine as machine
from repro.adg import topologies
from repro.compiler import compile_kernel
from repro.errors import SimulationError
from repro.harness.compile_cache import cached_compile
from repro.sim import SIM_ENGINES, default_engine, simulate
from repro.utils.rng import DeterministicRng
from repro.workloads import kernel as make_kernel
from repro.workloads.registry import workload_names
from tests.engine_parity import assert_engine_parity, run_all_engines

#: Workloads that need the SPU's indirect/join hardware to compile on
#: their natural form.
_SPU_ONLY = {"join", "spmm_outer", "resparsify"}


def _adg_for(accel, depth=None, banks=None):
    adg = topologies.PRESETS[accel]()
    if depth is not None:
        for port in adg.sync_elements():
            port.depth = depth
    if banks is not None and accel == "spu":
        adg.scratchpad().banks = banks
    return adg


def _compiled(name, accel, scale=0.05, iters=60, depth=None, banks=None):
    adg = _adg_for(accel, depth=depth, banks=banks)
    result = cached_compile(
        adg, ("test-sim-engines", name, scale, iters),
        lambda: compile_kernel(
            make_kernel(name, scale), adg,
            rng=DeterministicRng(("engines", name)),
            max_iters=iters, attempts=3,
        ),
    )
    return adg, result


class TestRegistryParity:
    """Acceptance: bit-identical SimResult on every registry workload."""

    @pytest.mark.parametrize("name", workload_names())
    def test_engines_agree(self, name):
        accel = "spu" if name in _SPU_ONLY else "softbrain"
        adg, compiled = _compiled(name, accel)
        assert compiled.ok, f"{name} failed to compile on {accel}"
        workload = make_kernel(name, 0.05)
        results, telemetries = run_all_engines(adg, compiled, workload)
        assert_engine_parity(results)

        # Step accounting: every modeled cycle is either executed or
        # skipped, and the oracle never skips.
        for engine in SIM_ENGINES:
            counters = telemetries[engine].counters
            assert (counters["sim_steps_executed"]
                    + counters["sim_cycles_skipped"]
                    == results[engine].cycles)
        assert telemetries["stepped"].counters["sim_cycles_skipped"] == 0


class TestRandomizedParity:
    """Property: parity holds across randomized workload/ADG shapes
    (FIFO depths and bank counts change every full/empty boundary)."""

    @settings(max_examples=15, deadline=None)
    @given(
        name=st.sampled_from(
            ["mm", "ellpack", "histogram", "stencil2d", "pool",
             "join", "spmm_outer"]
        ),
        depth=st.sampled_from([None, 1, 2]),
        banks=st.sampled_from([None, 1, 4]),
        scale=st.sampled_from([0.03, 0.05]),
    )
    def test_random_shapes_agree(self, name, depth, banks, scale):
        accel = "spu" if name in _SPU_ONLY else "softbrain"
        adg, compiled = _compiled(name, accel, scale=scale,
                                  depth=depth, banks=banks)
        if not compiled.ok:
            return  # some stressed shapes legitimately reject
        workload = make_kernel(name, scale)
        outcomes = {}
        for engine in SIM_ENGINES:
            memory = workload.make_memory()
            scope_copy = copy.deepcopy(compiled)
            scope_copy.scope.bind_constants(memory)
            try:
                outcomes[engine] = simulate(
                    adg, scope_copy, memory, engine=engine,
                )
            except SimulationError as exc:
                # Some stressed shapes genuinely deadlock the machine
                # model (e.g. depth-1 FIFOs under a join's pop burst);
                # parity then means the same error at the same cycle
                # with the same stall report.
                outcomes[engine] = str(exc)
        assert_engine_parity(outcomes)

    def test_functional_results_identical(self):
        adg, compiled = _compiled("mm", "softbrain")
        workload = make_kernel("mm", 0.05)
        memories = {}
        for engine in SIM_ENGINES:
            memory = workload.make_memory()
            scope_copy = copy.deepcopy(compiled)
            scope_copy.scope.bind_constants(memory)
            simulate(adg, scope_copy, memory, engine=engine)
            memories[engine] = memory
        for engine in SIM_ENGINES:
            for array in memories[engine]:
                assert all(
                    math.isclose(float(a), float(b),
                                 rel_tol=1e-12, abs_tol=1e-12)
                    for a, b in zip(memories[engine][array],
                                    memories["stepped"][array])
                ), (engine, array)


class TestFallbackEdgeCases:
    """Where bulk firing must fall back to stepping."""

    @pytest.mark.parametrize("name", ["pb_2mm", "pb_3mm"])
    def test_barrier_release(self, name):
        """Multi-region programs with barriers: batching must not leap
        over the cycle where a barrier region drains and its successors
        unblock."""
        adg, compiled = _compiled(name, "softbrain")
        assert compiled.ok
        assert compiled.scope.barriers, "expected a barriered scope"
        workload = make_kernel(name, 0.05)
        results, _ = run_all_engines(adg, compiled, workload)
        assert_engine_parity(results)

    @pytest.mark.parametrize("name", ["ellpack", "stencil2d", "mm"])
    def test_depth_one_fifo_boundaries(self, name):
        """Depth-1 sync FIFOs toggle full/empty every cycle — the worst
        case for steady-state detection."""
        adg, compiled = _compiled(name, "softbrain", depth=1)
        assert compiled.ok
        workload = make_kernel(name, 0.05)
        results, _ = run_all_engines(adg, compiled, workload)
        assert_engine_parity(results)

    def test_deadlock_diagnostics_identical(self, monkeypatch):
        """An impossible deadline trips the deadlock error at the same
        cycle in both engines, with the same per-region stall report."""
        adg, compiled = _compiled("mm", "softbrain")
        workload = make_kernel("mm", 0.05)
        monkeypatch.setattr(machine, "_DEADLOCK_FACTOR", 0)
        messages = {}
        for engine in SIM_ENGINES:
            memory = workload.make_memory()
            scope_copy = copy.deepcopy(compiled)
            scope_copy.scope.bind_constants(memory)
            with pytest.raises(SimulationError) as excinfo:
                simulate(adg, scope_copy, memory, engine=engine)
            messages[engine] = str(excinfo.value)
        assert_engine_parity(messages)
        report = messages["event"]
        assert "simulation deadlock at cycle" in report
        assert "unfinished regions" in report
        # The stall snapshot: per-region firing progress, port fills,
        # and active-segment detail.
        assert "fired" in report
        assert "fill" in report
        assert "words left" in report


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        adg, compiled = _compiled("pool", "softbrain")
        workload = make_kernel("pool", 0.05)
        memory = workload.make_memory()
        compiled.scope.bind_constants(memory)
        with pytest.raises(ValueError, match="unknown sim engine"):
            simulate(adg, compiled, memory, engine="warp-speed")

    def test_env_override_picks_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "stepped")
        assert default_engine() == "stepped"
        monkeypatch.delenv("REPRO_SIM_ENGINE")
        assert default_engine() == "event"

    def test_unknown_env_engine_rejected(self, monkeypatch):
        """Bugfix: a typo'd REPRO_SIM_ENGINE used to fall through to the
        stepped path silently; it must fail fast naming the engines."""
        monkeypatch.setenv("REPRO_SIM_ENGINE", "warp-speed")
        with pytest.raises(ValueError, match="unknown sim engine"):
            default_engine()

    def test_event_engine_skips_cycles(self):
        """The point of the rewrite: on a long steady-state workload the
        event engine executes far fewer cycle-steps."""
        adg, compiled = _compiled("histogram", "softbrain")
        workload = make_kernel("histogram", 0.05)
        results, telemetries = run_all_engines(adg, compiled, workload)
        assert_engine_parity(results)
        stepped = telemetries["stepped"].counters["sim_steps_executed"]
        event = telemetries["event"].counters["sim_steps_executed"]
        assert stepped == results["stepped"].cycles
        assert event * 5 <= stepped
        assert telemetries["event"].counters["sim_bulk_fire_events"] > 0
