"""Tests for the modular compilation layer."""

import pytest

from repro.adg import topologies
from repro.compiler import (
    CompiledKernel,
    Kernel,
    VariantParams,
    VariantSpace,
    compile_kernel,
    generate_control_program,
)
from repro.compiler.codegen import CommandKind
from repro.compiler.transforms.inplace import (
    inplace_update_bindings,
    tile_for_buffer,
)
from repro.compiler.transforms.stream_join import (
    estimate_join_instances,
    make_join_region,
    requires_dynamic_hardware,
)
from repro.compiler.transforms.vectorize import (
    legal_unrolls,
    reduction_tree,
)
from repro.errors import CompilationError
from repro.ir import Dfg, LinearStream
from repro.ir.stream import RecurrenceStream, StreamDirection
from repro.utils.rng import DeterministicRng
from repro.workloads import kernel as make_kernel


class TestVariantSpace:
    def test_fallback_always_present(self):
        space = VariantSpace(
            unroll_factors=(1, 2, 4), has_join=True, has_indirect=True,
            has_atomic=True,
        )
        variants = list(space.enumerate(None))
        assert VariantParams() in variants

    def test_features_pruned_by_hardware(self):
        space = VariantSpace(has_join=True, has_indirect=True)
        static_features = topologies.softbrain().feature_set()
        variants = list(space.enumerate(static_features))
        assert not any(v.use_join for v in variants)
        assert not any(v.use_indirect for v in variants)

    def test_capable_hardware_unlocks_features(self):
        space = VariantSpace(
            has_join=True, has_indirect=True, has_atomic=True
        )
        spu_features = topologies.spu().feature_set()
        variants = list(space.enumerate(spu_features))
        assert any(v.use_join for v in variants)
        assert any(v.use_atomic for v in variants)

    def test_atomic_requires_indirect_dimension(self):
        space = VariantSpace(has_indirect=True, has_atomic=True)
        for variant in space.enumerate(None):
            if variant.use_atomic:
                assert variant.use_indirect

    def test_describe(self):
        assert VariantParams().describe() == "V1"
        assert "join" in VariantParams(use_join=True).describe()
        assert "P4" in VariantParams(partial_sums=4).describe()


class TestKernel:
    def test_variants_skip_unbuildable(self):
        calls = []

        def builder(params):
            calls.append(params)
            if params.unroll > 2:
                raise CompilationError("too wide")
            return make_kernel("mm", 0.05).build(
                VariantParams(unroll=1)
            )

        kernel = Kernel(
            name="t", builder=builder,
            space=VariantSpace(unroll_factors=(1, 2, 4, 8)),
        )
        variants = list(kernel.variants(None))
        assert len(variants) == 2

    def test_no_buildable_variant_raises(self):
        def builder(params):
            raise CompilationError("never")

        kernel = Kernel(name="t", builder=builder)
        with pytest.raises(CompilationError):
            list(kernel.variants(None))

    def test_with_space_copies(self):
        kernel = make_kernel("histogram", 0.05)
        downgraded = kernel.with_space(has_atomic=False)
        assert kernel.space.has_atomic
        assert not downgraded.space.has_atomic


class TestCompileKernel:
    def test_picks_feature_variant_on_capable_hardware(self):
        adg = topologies.spu()
        result = compile_kernel(
            make_kernel("histogram", 0.05), adg,
            rng=DeterministicRng(0), max_iters=100,
        )
        assert result.ok
        assert result.params.use_atomic

    def test_falls_back_on_incapable_hardware(self):
        adg = topologies.softbrain()
        result = compile_kernel(
            make_kernel("histogram", 0.05), adg,
            rng=DeterministicRng(0), max_iters=100,
        )
        assert result.ok
        assert not result.params.use_atomic

    def test_result_carries_program(self):
        adg = topologies.softbrain()
        result = compile_kernel(
            make_kernel("pool", 0.1), adg,
            rng=DeterministicRng(0), max_iters=100,
        )
        assert result.ok
        kinds = {command.kind for command in result.program}
        assert CommandKind.CONFIG in kinds
        assert CommandKind.ISSUE_STREAM in kinds
        assert CommandKind.WAIT_ALL in kinds

    def test_deterministic(self):
        adg = topologies.softbrain()
        cycles = set()
        for _ in range(2):
            result = compile_kernel(
                make_kernel("ellpack", 0.05), adg,
                rng=DeterministicRng(7), max_iters=80,
            )
            cycles.add(result.perf.cycles)
        assert len(cycles) == 1


class TestCodegen:
    def _compiled(self):
        adg = topologies.softbrain()
        return adg, compile_kernel(
            make_kernel("mm", 0.05), adg,
            rng=DeterministicRng(1), max_iters=100,
        )

    def test_streams_ordered_reads_before_writes_per_region(self):
        _, result = self._compiled()
        commands = list(result.program)
        read_ports = {
            node.name for region in result.scope.regions
            for node in region.dfg.inputs()
        }
        seen_write = False
        for command in commands:
            if command.kind is not CommandKind.ISSUE_STREAM:
                continue
            if command.port in read_ports:
                assert not seen_write
            else:
                seen_write = True

    def test_issue_cycle_total_positive(self):
        _, result = self._compiled()
        assert result.program.issue_cycle_total() > len(result.program)

    def test_barriers_emitted(self):
        adg = topologies.softbrain()
        result = compile_kernel(
            make_kernel("pb_2mm", 0.05), adg,
            rng=DeterministicRng(1), max_iters=120,
        )
        assert result.ok
        kinds = [command.kind for command in result.program]
        assert CommandKind.BARRIER in kinds


class TestTransforms:
    def test_legal_unrolls_capped_by_pes(self):
        features = topologies.cca().feature_set()
        assert max(legal_unrolls(features)) <= max(1, features.total_pes)

    def test_reduction_tree_depth(self):
        dfg = Dfg()
        inputs = [dfg.add_input(f"x{i}") for i in range(8)]
        root = reduction_tree(dfg, "add", inputs)
        # 8 leaves -> 7 adds; critical path log2(8) * 1 = 3.
        assert len(dfg.instructions()) == 7
        assert dfg.longest_path_latency() == 3
        del root

    def test_reduction_tree_empty_raises(self):
        with pytest.raises(ValueError):
            reduction_tree(Dfg(), "add", [])

    def test_tile_for_buffer(self):
        assert tile_for_buffer(16, 64) == 16      # fits whole
        assert tile_for_buffer(64, 16) == 16      # exact divisor
        assert tile_for_buffer(60, 16) == 15      # largest divisor <= 16
        assert tile_for_buffer(7, 0) == 1

    def test_inplace_bindings_tiled_structure(self):
        inputs, outputs, tile, _ = inplace_update_bindings(
            "C", base_offset=0, update_words=32, outer_trips=3,
            port_out="o", sync_buffer_words=16,
        )
        assert tile == 16
        # Two tiles: each contributes a read + recurrence on the input
        # side and a recurrence + write on the output side.
        recurrences = [
            s for s in outputs if isinstance(s, RecurrenceStream)
        ]
        assert len(recurrences) == 2
        total_read = sum(
            s.volume() for s in inputs
        )
        assert total_read == 3 * 32  # every trip's worth of values

    def test_join_region_forms(self):
        def build(use_join):
            dfg = Dfg()
            dfg.add_input("k0")
            dfg.add_input("k1")
            acc = dfg.add_instr(
                "acc", [dfg.add_instr("add", [0, 1])], reduction=True
            )
            dfg.add_output("o", acc)
            return make_join_region(
                "j", dfg,
                input_streams={
                    "k0": LinearStream("K0", length=4),
                    "k1": LinearStream("K1", length=4),
                },
                output_streams={
                    "o": LinearStream(
                        "O", direction=StreamDirection.WRITE, length=1
                    ),
                },
                left_key="k0", right_key="k1",
                use_join=use_join, expected_instances=8,
            )

        transformed = build(True)
        fallback = build(False)
        assert requires_dynamic_hardware(transformed)
        assert not requires_dynamic_hardware(fallback)
        assert fallback.metadata["forced_recurrence"] >= 2

    def test_estimate_join_instances(self):
        assert estimate_join_instances(10, 20) == 30
        with pytest.raises(CompilationError):
            estimate_join_instances(1, 1, mode="bogus")


class TestCompileVerify:
    """compile_kernel(verify=...) — the opt-in verification hook."""

    def test_verify_report_attached(self):
        adg = topologies.softbrain()
        result = compile_kernel(
            make_kernel("mm", 0.05), adg,
            rng=DeterministicRng(0), max_iters=120, verify="report",
        )
        assert result.ok
        assert result.verify_report is not None
        assert result.verify_report.ok, result.verify_report.describe()

    def test_verify_defaults_off(self):
        adg = topologies.softbrain()
        result = compile_kernel(
            make_kernel("mm", 0.05), adg,
            rng=DeterministicRng(0), max_iters=120,
        )
        assert result.verify_report is None

    def test_verify_strict_raises_on_corruption(self, monkeypatch):
        from repro.errors import VerificationError
        import repro.verify.lint as lint_mod

        real = lint_mod.lint_schedule

        def sabotaged(schedule, adg=None, **kwargs):
            key = next(iter(schedule._pe_load))
            schedule._pe_load[key] += 1
            return real(schedule, adg, **kwargs)

        import repro.verify as verify_mod
        monkeypatch.setattr(verify_mod, "lint_schedule", sabotaged)
        adg = topologies.softbrain()
        with pytest.raises(VerificationError):
            compile_kernel(
                make_kernel("mm", 0.05), adg,
                rng=DeterministicRng(0), max_iters=120, verify="strict",
            )

    def test_verify_rejects_unknown_mode(self):
        adg = topologies.softbrain()
        with pytest.raises(ValueError):
            compile_kernel(make_kernel("mm", 0.05), adg, verify="maybe")
