#!/usr/bin/env python
"""Automated hardware/software co-design (the Figure 14 flow).

Starts from the full-capability 5x4 mesh and explores the design space
for a small workload set, printing each accepted step's area/power/
objective. The winning design is written out as JSON (reloadable with
repro.adg.load_adg) and as structural Verilog.

Run:  python examples/design_space_exploration.py
"""

import os

from repro.adg import save_adg, topologies
from repro.dse import DesignSpaceExplorer
from repro.estimation import estimate_area_power
from repro.hwgen import emit_verilog, generate_config_paths
from repro.utils.rng import DeterministicRng
from repro.workloads import kernel as make_kernel


def main():
    kernels = [make_kernel(name, scale=0.05)
               for name in ("mm", "md", "join")]
    initial = topologies.dse_initial()
    area, power = estimate_area_power(initial)
    print(f"initial hardware: {initial!r}")
    print(f"  estimated {area:.3f} mm^2, {power:.1f} mW")

    explorer = DesignSpaceExplorer(
        kernels, initial,
        rng=DeterministicRng("example-dse"),
        sched_iters=60,
    )
    result = explorer.run(max_iters=12)

    print("\naccepted steps:")
    for entry in result.history:
        if not entry.accepted:
            continue
        print(f"  iter {entry.iteration:3d}: area {entry.area_mm2:.3f} mm^2  "
              f"power {entry.power_mw:6.1f} mW  "
              f"objective {entry.objective:8.3f}  "
              f"[{entry.mutations[0] if entry.mutations else ''}]")

    print(f"\narea saving: {result.area_saving() * 100:.0f}%  "
          f"objective improvement: x{result.objective_improvement():.2f}")

    best = result.best_adg
    out_dir = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out_dir, exist_ok=True)
    adg_path = os.path.join(out_dir, "generated_design.json")
    rtl_path = os.path.join(out_dir, "generated_design.v")
    save_adg(best, adg_path)
    with open(rtl_path, "w") as handle:
        handle.write(emit_verilog(best, "generated_design"))
    paths = generate_config_paths(best, num_paths=3)
    print(f"\nwrote {adg_path}")
    print(f"wrote {rtl_path}")
    print(f"configuration: {len(paths)} paths, longest "
          f"{max(len(p) for p in paths)} hops")


if __name__ == "__main__":
    main()
