#!/usr/bin/env python
"""Sparse workloads across accelerators: why hardware features matter.

Compiles the merge-join and histogram kernels (the SPU microbenchmarks)
for Softbrain (static, no indirect controller) and for SPU (dynamic PEs,
banked indirect scratchpad with atomic update), simulating both. The
modular compiler picks the stream-join and atomic-update transforms only
where the hardware supports them — the same source, different code, and
a large performance gap (the Figure 12 story).

Run:  python examples/sparse_acceleration.py
"""

import copy

from repro.adg import topologies
from repro.compiler import compile_kernel
from repro.sim import simulate
from repro.workloads import kernel as make_kernel


def run_on(accel_name, kernel_name, scale=0.1):
    adg = topologies.PRESETS[accel_name]()
    workload = make_kernel(kernel_name, scale)
    result = compile_kernel(workload, adg, max_iters=150)
    if not result.ok:
        return None
    memory = workload.make_memory()
    reference = copy.deepcopy(memory)
    sim = simulate(adg, result, memory)
    workload.reference(reference)
    for array in memory:
        assert list(memory[array]) == list(reference[array]), (
            kernel_name, accel_name, array
        )
    return result, sim


def main():
    for kernel_name in ("join", "histogram"):
        print(f"=== {kernel_name} ===")
        baseline_cycles = None
        for accel_name in ("softbrain", "spu"):
            outcome = run_on(accel_name, kernel_name)
            if outcome is None:
                print(f"  {accel_name:10s}: does not map")
                continue
            result, sim = outcome
            note = ""
            if baseline_cycles is None:
                baseline_cycles = sim.cycles
            else:
                note = f"  ({baseline_cycles / sim.cycles:.1f}x vs softbrain)"
            print(f"  {accel_name:10s}: variant {result.params.describe():22s}"
                  f" {sim.cycles:7d} cycles{note}")
        print()


if __name__ == "__main__":
    main()
