#!/usr/bin/env python
"""Building a custom accelerator from ADG primitives.

Composes a heterogeneous design by hand — a systolic-style static column
for dense multiply-accumulate next to a dynamic column for data-dependent
work, the REVEL recipe — validates it, compiles two very different
kernels onto it, and generates the hardware artifacts (bitstream,
configuration paths, Verilog).

Run:  python examples/custom_accelerator.py
"""

import copy

from repro.adg import (
    Adg,
    ControlCore,
    Direction,
    Memory,
    MemoryKind,
    ProcessingElement,
    Scheduling,
    Switch,
    SyncElement,
    validate_adg,
)
from repro.adg.topologies import FP_OPS, INT_OPS, JOIN_OPS, NN_OPS
from repro.compiler import compile_kernel
from repro.hwgen import emit_verilog, encode_bitstream, generate_config_paths
from repro.sim import simulate
from repro.workloads import kernel as make_kernel


def build_hybrid(rows=4):
    """A two-column hybrid fabric with a shared banked scratchpad."""
    adg = Adg("hybrid")
    spad = adg.add(Memory(
        name="spad0", width=512, capacity_bytes=32 * 1024,
        width_bytes=64, banks=8, indirect=True, atomic_update=True,
        num_stream_slots=16,
    ))
    dma = adg.add(Memory(
        name="dma0", width=512, kind=MemoryKind.DMA,
        capacity_bytes=1 << 30, width_bytes=64, num_stream_slots=16,
    ))

    switches = {}
    for row in range(rows + 1):
        for col in range(3):
            switches[row, col] = adg.add(Switch(
                name=f"sw_{row}_{col}", width=64,
            ))
            if col:
                adg.connect_bidir(switches[row, col],
                                  switches[row, col - 1])
            if row:
                adg.connect_bidir(switches[row, col],
                                  switches[row - 1, col])

    for row in range(rows):
        static_pe = adg.add(ProcessingElement(
            name=f"mac{row}", width=64,
            scheduling=Scheduling.STATIC,
            op_names=set(FP_OPS | INT_OPS | NN_OPS),
            delay_fifo_depth=24,
        ))
        dynamic_pe = adg.add(ProcessingElement(
            name=f"dyn{row}", width=64,
            scheduling=Scheduling.DYNAMIC,
            op_names=set(INT_OPS | JOIN_OPS),
        ))
        for anchor in ((row, 0), (row + 1, 0), (row, 1), (row + 1, 1)):
            adg.connect_bidir(static_pe, switches[anchor])
        for anchor in ((row, 1), (row + 1, 1), (row, 2), (row + 1, 2)):
            adg.connect_bidir(dynamic_pe, switches[anchor])

    for index in range(8):
        port = adg.add(SyncElement(
            name=f"in{index}", width=256, depth=8,
            direction=Direction.INPUT,
        ))
        adg.connect(spad, port, 256)
        adg.connect(dma, port, 256)
        for lane in range(4):
            adg.connect(port, switches[(index + lane) % (rows + 1),
                                       (index + lane) % 3])
    for index in range(3):
        port = adg.add(SyncElement(
            name=f"out{index}", width=256, depth=8,
            direction=Direction.OUTPUT,
        ))
        adg.connect(port, spad, 256)
        adg.connect(port, dma, 256)
        for lane in range(4):
            adg.connect(switches[(index + lane) % (rows + 1),
                                 (index + lane) % 3], port)

    core = adg.add(ControlCore(name="core0"))
    adg.connect(core, switches[0, 0])
    return adg


def main():
    adg = build_hybrid()
    warnings = validate_adg(adg, strict=False)
    print(f"built {adg!r}; validation warnings: {warnings or 'none'}")

    for kernel_name in ("classifier", "join"):
        workload = make_kernel(kernel_name, scale=0.05)
        result = compile_kernel(workload, adg, max_iters=200)
        if not result.ok:
            print(f"  {kernel_name}: no legal mapping")
            continue
        memory = workload.make_memory()
        result.scope.bind_constants(memory)
        reference = copy.deepcopy(memory)
        sim = simulate(adg, result, memory)
        workload.reference(reference)
        import math

        matches = all(
            all(math.isclose(float(x), float(y), rel_tol=1e-9, abs_tol=1e-9)
                for x, y in zip(memory[a], reference[a]))
            for a in memory
        )
        print(f"  {kernel_name:10s}: {result.params.describe():10s} "
              f"{sim.cycles:6d} cycles  correct={matches}")

    bits = encode_bitstream(adg, result.schedule)
    paths = generate_config_paths(adg, num_paths=3)
    rtl = emit_verilog(adg)
    print(f"bitstream {bits.total_bits()} bits; "
          f"longest config path {max(len(p) for p in paths)} hops; "
          f"RTL {rtl.count(chr(10))} lines")


if __name__ == "__main__":
    main()
