#!/usr/bin/env python
"""Quickstart: C with #pragma dsa -> spatial accelerator -> simulation.

Compiles the paper's Figure 5 example program for the Softbrain-style
target, simulates it cycle-accurately, checks the result against the C
semantics, and prints what the hardware/software co-design produced.

Run:  python examples/quickstart.py
"""

import copy

from repro.adg import topologies
from repro.baselines.cpu import cpu_cycles
from repro.compiler import compile_kernel
from repro.frontend import compile_c
from repro.hwgen import encode_bitstream
from repro.sim import simulate

SOURCE = """
void row_scale(double *a, double *b, double *c, int n) {
  #pragma dsa config
  {
    #pragma dsa decouple
    for (int i = 0; i < n; ++i) {
      #pragma dsa offload
      for (int j = 0; j < n; ++j) {
        c[i * n + j] = a[i * n + j] * b[j];
      }
    }
  }
}
"""


def main():
    n = 16
    kernel = compile_c(
        SOURCE,
        bindings={"n": n},
        arrays={"a": n * n, "b": n, "c": n * n},
    )
    print(f"parsed kernel {kernel.name!r}; variant space: "
          f"unrolls={kernel.space.unroll_factors}")

    adg = topologies.softbrain()
    print(f"target: {adg!r}")

    result = compile_kernel(kernel, adg, max_iters=150)
    if not result.ok:
        raise SystemExit(f"compilation failed: {result.rejected}")
    print(f"chosen variant: {result.params.describe()} "
          f"(estimated {result.perf.cycles:.0f} cycles)")
    print(f"schedule: {result.schedule.summary()}")

    memory = kernel.make_memory()
    reference = copy.deepcopy(memory)
    sim = simulate(adg, result, memory)
    kernel.reference(reference)
    assert memory["c"] == reference["c"], "simulation diverged from C!"
    print(f"simulated {sim.cycles} cycles; results match the C semantics")

    cpu = cpu_cycles(kernel)
    print(f"estimated CPU cycles: {cpu:.0f} "
          f"(accelerator speedup ~{cpu / sim.cycles:.1f}x)")

    bits = encode_bitstream(adg, result.schedule)
    print(f"configuration bitstream: {bits.total_bits()} bits "
          f"({bits.words()} words)")


if __name__ == "__main__":
    main()
